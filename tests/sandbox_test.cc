// Tests for the sandbox substrate: union fs, namespaces, cgroups, and the
// cleanse/repurpose lifecycle.
#include <gtest/gtest.h>

#include "src/common/cost_model.h"
#include "src/sandbox/sandbox.h"
#include "src/sandbox/sandbox_pool.h"

namespace trenv {
namespace {

std::shared_ptr<FsLayer> BaseLayer() {
  auto layer = std::make_shared<FsLayer>("base");
  layer->AddFile("/lib/libc.so", FileNode{1 * kMiB, 1, 1});
  layer->AddFile("/bin/python", FileNode{5 * kMiB, 2, 2});
  return layer;
}

TEST(UnionFsTest, LowerLayersResolveTopDown) {
  UnionFs fs;
  auto bottom = std::make_shared<FsLayer>("bottom");
  bottom->AddFile("/a", FileNode{100, 1, 1});
  bottom->AddFile("/b", FileNode{200, 2, 2});
  auto top = std::make_shared<FsLayer>("top");
  top->AddFile("/a", FileNode{150, 3, 3});  // shadows bottom's /a
  fs.PushLower(bottom);
  fs.PushLower(top);
  EXPECT_EQ(fs.Stat("/a")->content_id, 3u);
  EXPECT_EQ(fs.Stat("/b")->content_id, 2u);
  EXPECT_FALSE(fs.Stat("/c").ok());
}

TEST(UnionFsTest, WriteCopiesUpAndPurgeRestores) {
  UnionFs fs;
  fs.PushLower(BaseLayer());
  ASSERT_TRUE(fs.Write("/lib/libc.so", 2 * kMiB, 99).ok());
  EXPECT_EQ(fs.Stat("/lib/libc.so")->content_id, 99u);
  EXPECT_EQ(fs.upper_file_count(), 1u);
  EXPECT_EQ(fs.PurgeUpper(), 1u);
  // Pristine lower view restored.
  EXPECT_EQ(fs.Stat("/lib/libc.so")->content_id, 1u);
  EXPECT_EQ(fs.upper_file_count(), 0u);
}

TEST(UnionFsTest, DeleteWhiteoutsLowerFile) {
  UnionFs fs;
  fs.PushLower(BaseLayer());
  ASSERT_TRUE(fs.Delete("/bin/python").ok());
  EXPECT_FALSE(fs.Exists("/bin/python"));
  fs.PurgeUpper();
  EXPECT_TRUE(fs.Exists("/bin/python"));
}

TEST(UnionFsTest, DeleteUpperOnlyFileLeavesNoWhiteout) {
  UnionFs fs;
  ASSERT_TRUE(fs.Write("/tmp/x", 10, 5).ok());
  ASSERT_TRUE(fs.Delete("/tmp/x").ok());
  EXPECT_FALSE(fs.Exists("/tmp/x"));
  EXPECT_EQ(fs.upper_file_count(), 0u);
  EXPECT_EQ(fs.Delete("/tmp/x").code(), StatusCode::kNotFound);
}

TEST(UnionFsTest, PopLowerSwapsFunctionLayer) {
  UnionFs fs;
  fs.PushLower(BaseLayer());
  auto fn_layer = std::make_shared<FsLayer>("fn-a-deps");
  fn_layer->AddFile("/app/handler.py", FileNode{10 * kKiB, 7, 7});
  fs.PushLower(fn_layer);
  EXPECT_TRUE(fs.Exists("/app/handler.py"));
  ASSERT_TRUE(fs.PopLower().ok());
  EXPECT_FALSE(fs.Exists("/app/handler.py"));
  EXPECT_TRUE(fs.Exists("/lib/libc.so"));
}

TEST(NetNamespaceTest, ResetClosesConnectionsKeepsConfig) {
  NetNamespace netns(1);
  netns.OpenConnection(10);
  netns.OpenConnection(11);
  netns.AddFirewallRule();
  netns.RecordTraffic(1000);
  netns.ResetForReuse();
  EXPECT_EQ(netns.open_connection_count(), 0u);  // no data leakage
  EXPECT_EQ(netns.firewall_rules(), 1u);         // config preserved
  EXPECT_EQ(netns.rx_bytes(), 1000u);            // stats preserved
  netns.FullReset();
  EXPECT_EQ(netns.firewall_rules(), 0u);
}

TEST(NetNsFactoryTest, CreationCostGrowsWithConcurrency) {
  const SimDuration alone = NetNsFactory::CreateCost(0);
  const SimDuration at15 = NetNsFactory::CreateCost(15);
  EXPECT_EQ(alone, cost::kNetNsCreateBase);
  // Paper: ~400 ms at 15-way concurrency.
  EXPECT_GT(at15.millis(), 350.0);
  EXPECT_LT(at15.millis(), 500.0);
}

TEST(CgroupManagerTest, CloneIntoIsOrdersOfMagnitudeCheaper) {
  CgroupManager mgr;
  const SimDuration migrate = mgr.MigrateCost(4);
  const SimDuration clone_into = mgr.CloneIntoCost();
  EXPECT_GT(migrate.micros() / clone_into.micros(), 30.0);
  EXPECT_GE(clone_into, cost::kCloneIntoCgroupMin);
  EXPECT_LE(clone_into, cost::kCloneIntoCgroupMax);
}

TEST(CgroupManagerTest, MigrationCappedAtMax) {
  CgroupManager mgr;
  EXPECT_LE(mgr.MigrateCost(1000), cost::kCgroupMigrateMax);
}

TEST(CgroupManagerTest, CreateCostInPaperRange) {
  CgroupManager mgr;
  for (int i = 0; i < 50; ++i) {
    const SimDuration c = mgr.CreateCost();
    EXPECT_GE(c, cost::kCgroupCreateBase);
    EXPECT_LE(c, cost::kCgroupCreateMax);
  }
}

TEST(MountNamespaceTest, OvermountShadowsAndUmountRestores) {
  MountNamespace mntns;
  auto fs_a = std::make_shared<UnionFs>();
  auto fs_b = std::make_shared<UnionFs>();
  mntns.Mount("/app", MountKind::kOverlay, fs_a);
  mntns.Mount("/app", MountKind::kOverlay, fs_b);
  EXPECT_EQ(mntns.Resolve("/app")->fs, fs_b);
  ASSERT_TRUE(mntns.Umount("/app").ok());
  EXPECT_EQ(mntns.Resolve("/app")->fs, fs_a);
  ASSERT_TRUE(mntns.Umount("/app").ok());
  EXPECT_EQ(mntns.Resolve("/app").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(mntns.Umount("/app").status().code(), StatusCode::kNotFound);
}

class SandboxLifecycleTest : public ::testing::Test {
 protected:
  SandboxLifecycleTest() : factory_(BaseLayer()) {}
  SandboxFactory factory_;
};

TEST_F(SandboxLifecycleTest, ColdCreateCostBreakdown) {
  auto overlay = std::make_shared<UnionFs>();
  auto result = factory_.CreateCold("fn-a", overlay, CgroupLimits{}, /*concurrent=*/0,
                                    /*use_clone_into=*/false);
  ASSERT_NE(result.sandbox, nullptr);
  EXPECT_EQ(result.sandbox->state(), SandboxState::kInUse);
  EXPECT_EQ(result.sandbox->current_function(), "fn-a");
  // Table 1 orders: network ~80 ms, rootfs >= 30 ms, cgroup >= 26 ms.
  EXPECT_NEAR(result.cost.network.millis(), 80, 1);
  EXPECT_GT(result.cost.rootfs.millis(), 25);
  EXPECT_GT(result.cost.cgroup.millis(), 20);
  EXPECT_LT(result.cost.other.millis(), 1.0);
  // Standard mounts exist.
  EXPECT_TRUE(result.sandbox->mntns().IsMounted("/proc"));
  EXPECT_TRUE(result.sandbox->mntns().IsMounted("/sys"));
  EXPECT_TRUE(result.sandbox->mntns().IsMounted("/app"));
}

TEST_F(SandboxLifecycleTest, RepurposeIsOrdersOfMagnitudeCheaperThanCold) {
  auto cold = factory_.CreateCold("fn-a", std::make_shared<UnionFs>(), CgroupLimits{}, 0, false);
  Sandbox& sandbox = *cold.sandbox;
  // Function A writes files, opens connections.
  sandbox.netns().OpenConnection(1);
  ASSERT_TRUE(sandbox.rootfs()->Write("/tmp/secret", 4096, 0xDEAD).ok());

  SandboxCost cleanse = sandbox.Cleanse(/*process_count=*/3);
  EXPECT_EQ(sandbox.state(), SandboxState::kIdle);
  EXPECT_EQ(sandbox.netns().open_connection_count(), 0u);
  // No data from A survives.
  EXPECT_FALSE(sandbox.rootfs()->Exists("/tmp/secret"));
  EXPECT_GT(cleanse.deferred, SimDuration::Zero());  // purge is async

  auto overlay_b = std::make_shared<UnionFs>();
  auto repurpose = sandbox.Repurpose("fn-b", overlay_b, CgroupLimits{.cpu_cores = 2});
  ASSERT_TRUE(repurpose.ok());
  EXPECT_EQ(sandbox.current_function(), "fn-b");
  EXPECT_EQ(sandbox.state(), SandboxState::kInUse);
  EXPECT_EQ(sandbox.cgroup().limits().cpu_cores, 2);
  // Repurposing takes ~1 ms vs ~150+ ms cold.
  EXPECT_LT(repurpose->Total().millis(), 2.0);
  EXPECT_GT(cold.cost.Total().millis(), 100.0);
}

TEST_F(SandboxLifecycleTest, RepurposeWhileInUseRejected) {
  auto cold = factory_.CreateCold("fn-a", nullptr, CgroupLimits{}, 0, false);
  auto result = cold.sandbox->Repurpose("fn-b", std::make_shared<UnionFs>(), CgroupLimits{});
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SandboxLifecycleTest, CleanupPurgesFunctionOverlayToo) {
  auto overlay = std::make_shared<UnionFs>();
  auto cold = factory_.CreateCold("fn-a", overlay, CgroupLimits{}, 0, false);
  ASSERT_TRUE(overlay->Write("/app/state.db", 1 * kMiB, 0xBAD).ok());
  cold.sandbox->Cleanse(1);
  EXPECT_EQ(overlay->upper_file_count(), 0u);
}

TEST(SandboxPoolTest, TakeIsFunctionAgnostic) {
  SandboxFactory factory(BaseLayer());
  SandboxPool pool;
  auto a = factory.CreateCold("fn-a", nullptr, CgroupLimits{}, 0, true);
  a.sandbox->Cleanse(1);
  EXPECT_TRUE(pool.Put(std::move(a.sandbox)));
  auto taken = pool.Take();
  ASSERT_NE(taken, nullptr);
  // Repurposable into a *different* function.
  EXPECT_TRUE(taken->Repurpose("fn-z", std::make_shared<UnionFs>(), CgroupLimits{}).ok());
  EXPECT_EQ(pool.Take(), nullptr);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(SandboxPoolTest, CapacityBound) {
  SandboxFactory factory(BaseLayer());
  SandboxPool pool(/*max_idle=*/1);
  auto a = factory.CreateCold("a", nullptr, CgroupLimits{}, 0, true);
  auto b = factory.CreateCold("b", nullptr, CgroupLimits{}, 0, true);
  EXPECT_TRUE(pool.Put(std::move(a.sandbox)));
  EXPECT_FALSE(pool.Put(std::move(b.sandbox)));
  EXPECT_EQ(pool.idle_count(), 1u);
}

TEST(SandboxPoolTest, OverlayCacheRoundTrip) {
  SandboxPool pool;
  auto layer = std::make_shared<FsLayer>("fn-deps");
  layer->AddFile("/app/handler.py", FileNode{1024, 9, 9});
  pool.RegisterFunctionLayer("fn", layer);

  auto overlay = pool.AcquireOverlay("fn");
  ASSERT_NE(overlay, nullptr);
  EXPECT_TRUE(overlay->Exists("/app/handler.py"));
  ASSERT_TRUE(overlay->Write("/app/out.txt", 10, 1).ok());
  pool.ReleaseOverlay("fn", overlay);
  EXPECT_EQ(pool.cached_overlay_count("fn"), 1u);
  // Reacquired overlay is purged.
  auto again = pool.AcquireOverlay("fn");
  EXPECT_EQ(again, overlay);
  EXPECT_FALSE(again->Exists("/app/out.txt"));
  EXPECT_EQ(pool.cached_overlay_count("fn"), 0u);
}

}  // namespace
}  // namespace trenv
