// Tests for the VM-based agent platform: startup model (Fig 23), page-cache
// behaviour (Fig 25/26), browser sharing under overcommit (Fig 24).
#include <gtest/gtest.h>

#include "src/common/cost_model.h"
#include "src/vm/vm_platform.h"

namespace trenv {
namespace {

const AgentProfile& Blackjack() { return *FindAgent("Blackjack"); }

TEST(VmStartupTest, TrEnvFasterThanE2bWhichIsFasterThanCh) {
  const auto e2b = ComputeVmStartup(E2bConfig(), Blackjack(), 0, false);
  const auto e2b_plus = ComputeVmStartup(E2bPlusConfig(), Blackjack(), 0, false);
  const auto ch = ComputeVmStartup(VanillaChConfig(), Blackjack(), 0, false);
  const auto trenv = ComputeVmStartup(TrEnvVmConfig(), Blackjack(), 0, true);

  // Fig 23 ordering: TrEnv < E2B < E2B+ < CH; CH memory copy alone >700 ms.
  EXPECT_LT(trenv.Total(), e2b.Total());
  EXPECT_LT(e2b.Total(), e2b_plus.Total());
  EXPECT_LT(e2b_plus.Total(), ch.Total());
  EXPECT_GT(ch.memory.millis(), 700.0);
  // TrEnv reduces startup by roughly 40-60% vs E2B (paper: ~40-45%).
  const double reduction = 1.0 - trenv.Total().seconds() / e2b.Total().seconds();
  EXPECT_GT(reduction, 0.35);
  EXPECT_LT(reduction, 0.70);
  EXPECT_TRUE(trenv.sandbox_repurposed);
}

TEST(VmStartupTest, ConcurrencyInflatesE2bNotTrEnv) {
  const auto e2b_alone = ComputeVmStartup(E2bConfig(), Blackjack(), 0, false);
  const auto e2b_10 = ComputeVmStartup(E2bConfig(), Blackjack(), 10, false);
  const auto trenv_alone = ComputeVmStartup(TrEnvVmConfig(), Blackjack(), 0, true);
  const auto trenv_10 = ComputeVmStartup(TrEnvVmConfig(), Blackjack(), 10, true);
  EXPECT_GT(e2b_10.Total().millis(), e2b_alone.Total().millis() + 100.0);
  EXPECT_NEAR(trenv_10.Total().millis(), trenv_alone.Total().millis(), 1.0);
}

TEST(VmStartupTest, TrEnvWithoutPooledSandboxFallsBackToColdPath) {
  const auto hit = ComputeVmStartup(TrEnvVmConfig(), Blackjack(), 0, true);
  const auto miss = ComputeVmStartup(TrEnvVmConfig(), Blackjack(), 0, false);
  EXPECT_FALSE(miss.sandbox_repurposed);
  EXPECT_GT(miss.Total(), hit.Total());
}

TEST(GuestStorageTest, VirtioBlkDoubleCaches) {
  PageCache host("host");
  GuestStorage storage(VmSystemConfig::Storage::kVirtioBlk, &host, 100, 1);
  const auto outcome = storage.ReadBase(0, 1000);
  EXPECT_EQ(outcome.guest_cache_new_bytes, 1000 * kPageSize);
  EXPECT_EQ(outcome.host_cache_new_bytes, 1000 * kPageSize);
  // Re-reading is free (both caches warm).
  const auto again = storage.ReadBase(0, 1000);
  EXPECT_EQ(again.guest_cache_new_bytes, 0u);
  EXPECT_EQ(again.host_cache_new_bytes, 0u);
}

TEST(GuestStorageTest, VirtioBlkDoesNotShareAcrossVms) {
  PageCache host("host");
  GuestStorage vm1(VmSystemConfig::Storage::kVirtioBlk, &host, 100, 1);
  GuestStorage vm2(VmSystemConfig::Storage::kVirtioBlk, &host, 100, 2);
  vm1.ReadBase(0, 500);
  const auto outcome = vm2.ReadBase(0, 500);
  // Same logical content, but per-VM rootfs files: cached again.
  EXPECT_EQ(outcome.host_cache_new_bytes, 500 * kPageSize);
}

TEST(GuestStorageTest, PmemUnionSharesHostCopyAndBypassesGuest) {
  PageCache host("host");
  GuestStorage vm1(VmSystemConfig::Storage::kPmemUnionFs, &host, 100, 1);
  GuestStorage vm2(VmSystemConfig::Storage::kPmemUnionFs, &host, 100, 2);
  const auto first = vm1.ReadBase(0, 500);
  EXPECT_EQ(first.guest_cache_new_bytes, 0u);  // guest cache bypassed
  EXPECT_EQ(first.host_cache_new_bytes, 500 * kPageSize);
  const auto second = vm2.ReadBase(0, 500);
  EXPECT_EQ(second.host_cache_new_bytes, 0u);  // shared host copy
}

TEST(GuestStorageTest, PmemWritableDeviceBypassesHostCache) {
  PageCache host("host");
  GuestStorage trenv(VmSystemConfig::Storage::kPmemUnionFs, &host, 100, 1);
  const auto outcome = trenv.WriteAndReadBack(200);
  EXPECT_EQ(outcome.host_cache_new_bytes, 0u);  // O_DIRECT
  EXPECT_EQ(outcome.guest_cache_new_bytes, 200 * kPageSize);

  GuestStorage e2b(VmSystemConfig::Storage::kVirtioBlk, &host, 100, 2);
  const auto dup = e2b.WriteAndReadBack(200);
  EXPECT_EQ(dup.host_cache_new_bytes, 200 * kPageSize);  // duplicated
}

TEST(GuestStorageTest, DropCachesKeepsSharedBaseResident) {
  PageCache host("host");
  GuestStorage vm1(VmSystemConfig::Storage::kPmemUnionFs, &host, 100, 1);
  vm1.ReadBase(0, 100);
  vm1.WriteAndReadBack(50);
  const auto [guest_released, host_released] = vm1.DropCaches();
  EXPECT_EQ(guest_released, 50 * kPageSize);
  EXPECT_EQ(host_released, 0u);  // O_DIRECT never cached; base is shared
  EXPECT_EQ(host.cached_bytes(), 100 * kPageSize);
}

class AgentPlatformTest : public ::testing::Test {
 protected:
  static std::unique_ptr<AgentVmPlatform> MakePlatform(VmSystemConfig config) {
    auto platform = std::make_unique<AgentVmPlatform>(std::move(config));
    for (const auto& agent : Table2Agents()) {
      EXPECT_TRUE(platform->DeployAgent(agent).ok());
    }
    return platform;
  }
};

TEST_F(AgentPlatformTest, SingleAgentRunsAtNominalLatency) {
  auto platform = MakePlatform(TrEnvVmConfig());
  ASSERT_TRUE(platform->SubmitLaunch(SimTime::Zero(), "Blackjack").ok());
  platform->RunToCompletion();
  ASSERT_EQ(platform->completed_runs(), 1u);
  const auto& metrics = platform->metrics().at("Blackjack");
  // Uncontended: e2e close to the Table 2 measurement.
  EXPECT_NEAR(metrics.e2e_s.Mean(), Blackjack().e2e_latency.seconds(), 0.4);
}

TEST_F(AgentPlatformTest, OvercommitInflatesLatency) {
  // 200 Game-design agents on 20 physical cores (section 6.1: the paper
  // measures ~25% execution-latency inflation in this configuration).
  auto run = [&](int count) {
    auto platform = MakePlatform(TrEnvVmConfig());
    for (int i = 0; i < count; ++i) {
      EXPECT_TRUE(platform
                      ->SubmitLaunch(SimTime::Zero() + SimDuration::Millis(i * 15),
                                     "Game design")
                      .ok());
    }
    platform->RunToCompletion();
    return platform->metrics().at("Game design").e2e_s.Mean();
  };
  const double alone = run(1);
  const double crowded = run(200);
  EXPECT_GT(crowded, alone * 1.04);
  EXPECT_LT(crowded, alone * 1.8);
}

TEST_F(AgentPlatformTest, BrowserSharingReducesLatencyForBrowserHeavyAgents) {
  auto p99_of = [&](VmSystemConfig config, const std::string& agent) {
    auto platform = MakePlatform(std::move(config));
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(
          platform->SubmitLaunch(SimTime::Zero() + SimDuration::Millis(i * 40), agent).ok());
    }
    platform->RunToCompletion();
    return platform->metrics().at(agent).e2e_s.P99();
  };
  const double blog_plain = p99_of(TrEnvVmConfig(), "Blog summary");
  const double blog_shared = p99_of(TrEnvSConfig(), "Blog summary");
  EXPECT_LT(blog_shared, blog_plain);
  // Game design barely benefits (low browser CPU) — Fig 24c.
  const double game_plain = p99_of(TrEnvVmConfig(), "Game design");
  const double game_shared = p99_of(TrEnvSConfig(), "Game design");
  const double game_gain = 1.0 - game_shared / game_plain;
  const double blog_gain = 1.0 - blog_shared / blog_plain;
  EXPECT_GT(blog_gain, game_gain);
}

TEST_F(AgentPlatformTest, TrEnvUsesLessMemoryThanE2b) {
  auto peak = [&](VmSystemConfig config) {
    auto platform = MakePlatform(std::move(config));
    for (int i = 0; i < 30; ++i) {
      EXPECT_TRUE(platform
                      ->SubmitLaunch(SimTime::Zero() + SimDuration::Millis(i * 25),
                                     "Blog summary")
                      .ok());
    }
    platform->RunToCompletion();
    return platform->memory_gauge().peak();
  };
  const double e2b = peak(E2bConfig());
  const double e2b_plus = peak(E2bPlusConfig());
  const double trenv = peak(TrEnvSConfig());
  // Fig 25 ordering: TrEnv < E2B+ < E2B, with 10-61% savings vs E2B.
  EXPECT_LT(e2b_plus, e2b);
  EXPECT_LT(trenv, e2b_plus);
  const double saving = 1.0 - trenv / e2b;
  EXPECT_GT(saving, 0.10);
  EXPECT_LT(saving, 0.75);
}

TEST_F(AgentPlatformTest, SandboxPoolGrowsAndGetsReused) {
  auto platform = MakePlatform(TrEnvVmConfig());
  ASSERT_TRUE(platform->SubmitLaunch(SimTime::Zero(), "Blackjack").ok());
  ASSERT_TRUE(
      platform->SubmitLaunch(SimTime::Zero() + SimDuration::Seconds(10), "Bug fixer").ok());
  platform->RunToCompletion();
  EXPECT_EQ(platform->metrics().at("Blackjack").repurposed, 0u);
  EXPECT_EQ(platform->metrics().at("Bug fixer").repurposed, 1u);
  // The second run reused the first run's sandbox: only one exists.
  EXPECT_EQ(platform->pooled_sandboxes(), 1u);
}

TEST_F(AgentPlatformTest, MemoryReturnsToZeroAfterAllRuns) {
  auto platform = MakePlatform(TrEnvSConfig());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        platform->SubmitLaunch(SimTime::Zero() + SimDuration::Seconds(i), "Shop assistant")
            .ok());
  }
  platform->RunToCompletion();
  // VMs torn down, browsers reaped; only the shared host-cached base stays.
  EXPECT_EQ(platform->browsers().browser_count(), 0u);
  const double final_mem = platform->memory_gauge().current();
  EXPECT_LE(final_mem, static_cast<double>(platform->host_cache().cached_bytes()) + 1.0);
}

}  // namespace
}  // namespace trenv
