// Density tiering subsystem: demote/promote round trips, pressure-driven
// demotion, crash cleanup, and footprint accounting (template-shared pages
// are never double-counted).
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/density/footprint.h"
#include "src/platform/testbed.h"
#include "src/workload/arrival.h"

namespace trenv {
namespace {

constexpr const char* kFns[] = {"JS", "CR", "IR"};

PlatformConfig FastDensityConfig(bool enabled) {
  PlatformConfig config;
  config.keep_alive_ttl = SimDuration::Minutes(5);
  config.density.enabled = enabled;
  config.density.sweep_interval = SimDuration::Seconds(5);
  config.density.demote_hot_after = SimDuration::Seconds(20);
  config.density.demote_warm_after = SimDuration::Seconds(60);
  return config;
}

struct RunResult {
  uint64_t invocations = 0;
  uint64_t warm_starts = 0;
  uint64_t cold_starts = 0;
  uint64_t promotions = 0;
  uint64_t demotions = 0;
  uint64_t frames_after_evict = 0;
  uint64_t cxl_after_evict = 0;
  uint64_t nas_after_evict = 0;
};

RunResult RunDensityWorkload(bool enabled, uint64_t seed) {
  Testbed bed(SystemKind::kTrEnvCxl, FastDensityConfig(enabled));
  EXPECT_TRUE(bed.DeployTable4Functions().ok());
  Rng rng(seed);
  Schedule schedule =
      MakePoissonWorkload({kFns[0], kFns[1], kFns[2]}, /*rate_per_sec=*/0.2,
                          SimDuration::Minutes(5), /*function_skew=*/0.5, rng);
  EXPECT_TRUE(bed.platform().Run(schedule).ok());
  bed.platform().EvictAllIdle();

  RunResult r;
  for (const auto& [name, m] : bed.platform().metrics().per_function()) {
    r.invocations += m.invocations;
    r.warm_starts += m.warm_starts;
    r.cold_starts += m.cold_starts;
  }
  r.promotions = bed.platform().density().promotions();
  r.demotions = bed.platform().density().demotions();
  r.frames_after_evict = bed.platform().frames().used_bytes();
  r.cxl_after_evict = bed.cxl().used_bytes();
  r.nas_after_evict = bed.nas().used_bytes();
  return r;
}

// The live migration loop must not perturb the workload beyond the honest
// attach cost: the same trace with density on and off completes the same
// invocations, and every swap block is released by the end (no leak, no
// double-free).
TEST(DensityTest, DemotePromoteRoundTripMatchesDensityOffAcrossSeeds) {
  for (uint64_t seed : {11u, 23u, 47u}) {
    RunResult off = RunDensityWorkload(false, seed);
    RunResult on = RunDensityWorkload(true, seed);
    EXPECT_EQ(on.invocations, off.invocations) << "seed " << seed;
    EXPECT_EQ(on.warm_starts + on.cold_starts, off.warm_starts + off.cold_starts)
        << "seed " << seed;
    // Promotion fetches delay completion, so a borderline arrival can flip
    // warm->cold; anything beyond a couple of flips would mean the tiering
    // loop is perturbing the pool itself.
    EXPECT_LE(on.cold_starts, off.cold_starts + 2) << "seed " << seed;
    // The machinery actually ran: idle instances aged down a tier and were
    // pulled back up on re-invocation.
    EXPECT_GT(on.demotions, 0u) << "seed " << seed;
    EXPECT_GT(on.promotions, 0u) << "seed " << seed;
    // Round-trip accounting: all frames and swap blocks released, leaving
    // exactly the density-off residue (templates in the shared pool).
    EXPECT_EQ(on.frames_after_evict, off.frames_after_evict) << "seed " << seed;
    EXPECT_EQ(on.cxl_after_evict, off.cxl_after_evict) << "seed " << seed;
    EXPECT_EQ(on.nas_after_evict, 0u) << "seed " << seed;
  }
}

// Every warm take pays the attach cost of its current tier; DRAM-hot takes
// are free, so attach latency is recorded for every warm start and demoted
// takes are the only non-zero samples.
TEST(DensityTest, AttachLatencyIsRecordedPerWarmTake) {
  Testbed bed(SystemKind::kTrEnvCxl, FastDensityConfig(true));
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  Rng rng(7);
  Schedule schedule = MakePoissonWorkload({kFns[0], kFns[1]}, 0.2,
                                          SimDuration::Minutes(4), 0.5, rng);
  ASSERT_TRUE(bed.platform().Run(schedule).ok());
  uint64_t warm = 0;
  for (const auto& [name, m] : bed.platform().metrics().per_function()) {
    warm += m.warm_starts;
  }
  const DensityManager& density = bed.platform().density();
  EXPECT_EQ(density.attach_ms().count(), warm);
  if (density.promotions() > 0) {
    EXPECT_GT(density.attach_ms().Max(), 0.0);
    EXPECT_EQ(density.promote_ms().count(), density.promotions());
  }
}

// Under a tight soft cap, density demotes idle instances instead of evicting
// them: warmth survives pressure that would otherwise force cold starts.
TEST(DensityTest, PressureDemotesInsteadOfEvicting) {
  auto run = [](bool enabled) {
    PlatformConfig config = FastDensityConfig(enabled);
    config.soft_mem_cap_bytes = 8 * kMiB;
    Testbed bed(SystemKind::kTrEnvCxl, config);
    EXPECT_TRUE(bed.DeployTable4Functions().ok());
    Rng rng(5);
    Schedule schedule = MakePoissonWorkload({kFns[0], kFns[1], kFns[2]}, 0.5,
                                            SimDuration::Minutes(3), 0.5, rng);
    EXPECT_TRUE(bed.platform().Run(schedule).ok());
    uint64_t warm = 0;
    for (const auto& [name, m] : bed.platform().metrics().per_function()) {
      warm += m.warm_starts;
    }
    return std::pair<uint64_t, uint64_t>(warm, bed.platform().density().demotions());
  };
  auto [warm_off, demotions_off] = run(false);
  auto [warm_on, demotions_on] = run(true);
  EXPECT_EQ(demotions_off, 0u);
  EXPECT_GT(demotions_on, 0u);
  // Demotion preserves the warm pool the cap would have drained.
  EXPECT_GE(warm_on, warm_off);
}

// The per-function surplus cap trims each function's parked population to
// its recent demand plus the configured spares; with the knob at its
// negative default the sweep never evicts on its behalf.
TEST(DensityTest, SurplusCapTrimsIdleWarmInstancesPerFunction) {
  // A one-function burst parks several concurrent instances, then the idle
  // tail decays the traffic score: with no spares allowed, sweeps trim the
  // parked population down to the shrinking allowance before TTL expiry.
  auto run = [](int32_t surplus) {
    PlatformConfig config = FastDensityConfig(true);
    config.density.surplus_per_function = surplus;
    Testbed bed(SystemKind::kTrEnvCxl, config);
    EXPECT_TRUE(bed.DeployTable4Functions().ok());
    Rng rng(17);
    Schedule schedule = MakePoissonWorkload({kFns[0]}, /*rate_per_sec=*/10.0,
                                            SimDuration::Seconds(30), 0.5, rng);
    EXPECT_TRUE(bed.platform().Run(schedule).ok());
    return bed.platform().density().surplus_evictions();
  };
  // Negative default: the knob is off, the sweep never evicts on its behalf.
  EXPECT_EQ(run(-1), 0u);
  // Zero spares: the decayed allowance falls below the parked population.
  EXPECT_GT(run(0), 0u);
  // Generous spares: demand + 8 never binds for this burst, so the cap is
  // demand-aware rather than a flat per-function limit.
  EXPECT_EQ(run(8), 0u);
}

// A node crash mid-run drops every swap block along with the warm pool.
TEST(DensityTest, CrashReleasesAllSwapBlocks) {
  Testbed bed(SystemKind::kTrEnvCxl, FastDensityConfig(true));
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  Rng rng(13);
  Schedule schedule = MakePoissonWorkload({kFns[0], kFns[1], kFns[2]}, 0.2,
                                          SimDuration::Minutes(5), 0.5, rng);
  ASSERT_TRUE(bed.platform().Run(schedule).ok());
  // The post-workload idle tail walked instances down to the NAS cold tier.
  EXPECT_GT(bed.platform().density().tier_timeline(DensityTier::kNasCold).peak(), 0.0);
  const uint64_t cxl_templates = bed.cxl().used_bytes();
  bed.platform().Crash();
  EXPECT_EQ(bed.platform().frames().used_bytes(), 0u);
  EXPECT_EQ(bed.nas().used_bytes(), 0u);
  EXPECT_LE(bed.cxl().used_bytes(), cxl_templates);
}

// Footprint accounting: pool-shared template pages appear in
// shared_pool_pages but never in NodeBytes(), and restoring more instances
// of the same function stores no additional unique pages — K warm copies
// cost K * (private + metadata), not K * image.
TEST(DensityTest, FootprintNeverDoubleCountsTemplateSharedPages) {
  CxlPool cxl(8 * kGiB);
  BackendRegistry backends;
  backends.Register(&cxl);
  TieredPool tiered;
  tiered.AddTier(&cxl);
  SnapshotDedupStore dedup(&tiered);
  SandboxFactory factory(std::make_shared<FsLayer>("base"));
  SandboxPool pool;
  MmtApi api(&backends);
  TrEnvEngine engine(&factory, &pool, &api, &dedup);

  FunctionProfile profile;
  profile.name = "dense-fn";
  profile.language = "python";
  profile.image_bytes = 32 * kMiB;
  profile.threads = 4;
  ASSERT_TRUE(engine.Prepare(profile).ok());
  FrameAllocator frames(8 * kGiB);
  PidAllocator pids;
  RestoreContext ctx;
  ctx.frames = &frames;
  ctx.backends = &backends;
  ctx.pids = &pids;

  Rng rng(29);
  const uint64_t unique_after_prepare = dedup.stored_unique_pages();
  std::vector<std::unique_ptr<FunctionInstance>> instances;
  const int k = 2 + static_cast<int>(rng.NextU64() % 4);  // 2..5 warm copies
  uint64_t total_node_bytes = 0;
  uint64_t first_node_bytes = 0;
  for (int i = 0; i < k; ++i) {
    auto outcome = engine.Restore(profile, ctx);
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(engine.OnExecute(profile, *outcome->instance, ctx).ok());
    engine.OnExecuteDone(*outcome->instance);
    SandboxFootprint fp = FootprintModel::Of(*outcome->instance);
    // Template pages live in the shared pool and are visible to the
    // instance, but are excluded from its node-local bill.
    EXPECT_GT(fp.shared_pool_pages, 0u);
    EXPECT_EQ(fp.NodeBytes(), fp.private_bytes + fp.metadata_bytes);
    EXPECT_EQ(fp.private_bytes,
              outcome->instance->ResidentLocalPages() * kPageSize);
    if (i == 0) first_node_bytes = fp.NodeBytes();
    total_node_bytes += fp.NodeBytes();
    instances.push_back(std::move(outcome->instance));
  }
  // Additional copies of the same function dedup to zero new stored pages:
  // the shared image is counted once globally, not once per instance.
  EXPECT_EQ(dedup.stored_unique_pages(), unique_after_prepare);
  // Node cost scales with private state only — K identical instances bill
  // exactly K times one instance, with no shared-page inflation.
  EXPECT_EQ(total_node_bytes, static_cast<uint64_t>(k) * first_node_bytes);
  for (auto& instance : instances) {
    engine.Retire(std::move(instance), ctx);
  }
  EXPECT_EQ(frames.used_bytes(), 0u);
}

}  // namespace
}  // namespace trenv
