// Tests for the shared-state data plane (src/shstate/): region lifecycle,
// owner/reader PTE states, single-writer invalidation, leases, Nexus-style
// ownership transfer, crash recovery, and the stateful pipeline driver.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/fault/fault_schedule.h"
#include "src/mempool/cxl_pool.h"
#include "src/mempool/dram_pool.h"
#include "src/platform/cluster.h"
#include "src/shstate/pipeline_driver.h"
#include "src/shstate/region_manager.h"
#include "src/workload/pipeline.h"

namespace trenv {
namespace {

constexpr uint64_t kPages = 8;

class ShStateTest : public ::testing::Test {
 protected:
  ShStateTest() : cxl_(64 * kMiB) {
    backends_.Register(&cxl_);
    tiered_.AddTier(&cxl_);
  }

  ShStateConfig Config() {
    ShStateConfig config;
    config.enabled = true;
    config.pool_nodes = 2;  // workers 0/2 share home 0, workers 1/3 home 1
    config.lease_ttl = SimDuration::Seconds(10);
    return config;
  }

  CxlPool cxl_;
  BackendRegistry backends_;
  TieredPool tiered_;
};

TEST_F(ShStateTest, CreateMapsOwnerWithSharedOwnerFlags) {
  RegionManager mgr(Config(), /*workers=*/4, &tiered_, &backends_, nullptr);
  auto id_or = mgr.CreateRegion("r", kPages, /*owner=*/1, SimTime::Zero());
  ASSERT_TRUE(id_or.ok());
  const RegionId id = *id_or;
  EXPECT_EQ(mgr.OwnerOf(id), 1);
  EXPECT_EQ(mgr.HomeNodeOf(id), 1u);  // HomeOf(1) with 2 pool nodes
  const Vpn window = mgr.WindowOf(id);
  for (uint64_t i = 0; i < kPages; ++i) {
    auto pte = mgr.worker_mm(1).page_table().Lookup(window + i);
    ASSERT_TRUE(pte.has_value());
    EXPECT_TRUE(pte->flags.valid);
    EXPECT_FALSE(pte->flags.write_protected);
    EXPECT_TRUE(pte->flags.shared);
    EXPECT_TRUE(pte->flags.owner);
    EXPECT_FALSE(pte->flags.dirty);
    EXPECT_EQ(pte->flags.pool, PoolKind::kCxl);
  }
  // No other worker maps the window.
  EXPECT_FALSE(mgr.worker_mm(0).page_table().IsMapped(window));
}

TEST_F(ShStateTest, LocalDramCannotBackARegion) {
  // A pool with only a local-DRAM tier cannot host shared regions.
  DramPool dram(64 * kMiB);
  BackendRegistry registry;
  registry.Register(&dram);
  TieredPool local_only;
  local_only.AddTier(&dram);
  RegionManager mgr(Config(), 2, &local_only, &registry, nullptr);
  auto id_or = mgr.CreateRegion("r", kPages, 0, SimTime::Zero());
  EXPECT_FALSE(id_or.ok());
  EXPECT_EQ(id_or.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ShStateTest, OwnerWriteSetsDirtyAndBumpsVersion) {
  RegionManager mgr(Config(), 4, &tiered_, &backends_, nullptr);
  const RegionId id = *mgr.CreateRegion("r", kPages, 0, SimTime::Zero());
  auto op = mgr.WriteRegion(id, 0, SimTime::Zero());
  ASSERT_TRUE(op.ok());
  EXPECT_GT(op->latency, SimDuration::Zero());
  EXPECT_EQ(mgr.RegionVersion(id), 1u);
  EXPECT_EQ(mgr.pool_write_bytes(), kPages * kPageSize);
  auto pte = mgr.worker_mm(0).page_table().Lookup(mgr.WindowOf(id));
  ASSERT_TRUE(pte.has_value());
  EXPECT_TRUE(pte->flags.dirty);
  EXPECT_TRUE(pte->flags.owner);
}

TEST_F(ShStateTest, NonOwnerWriteIsRefused) {
  RegionManager mgr(Config(), 4, &tiered_, &backends_, nullptr);
  const RegionId id = *mgr.CreateRegion("r", kPages, 0, SimTime::Zero());
  ASSERT_TRUE(mgr.OpenReader(id, 1, SimTime::Zero()).ok());
  auto op = mgr.WriteRegion(id, 1, SimTime::Zero());
  EXPECT_FALSE(op.ok());
  EXPECT_EQ(op.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(ShStateTest, ReaderMappingIsWriteProtectedShared) {
  RegionManager mgr(Config(), 4, &tiered_, &backends_, nullptr);
  const RegionId id = *mgr.CreateRegion("r", kPages, 0, SimTime::Zero());
  ASSERT_TRUE(mgr.OpenReader(id, 2, SimTime::Zero()).ok());
  EXPECT_TRUE(mgr.ReaderMapped(id, 2));
  auto pte = mgr.worker_mm(2).page_table().Lookup(mgr.WindowOf(id));
  ASSERT_TRUE(pte.has_value());
  EXPECT_TRUE(pte->flags.valid);
  EXPECT_TRUE(pte->flags.write_protected);
  EXPECT_TRUE(pte->flags.shared);
  EXPECT_FALSE(pte->flags.owner);
}

TEST_F(ShStateTest, OwnerWriteRevokesReadersAndReadRefetches) {
  RegionManager mgr(Config(), 4, &tiered_, &backends_, nullptr);
  const RegionId id = *mgr.CreateRegion("r", kPages, 0, SimTime::Zero());
  ASSERT_TRUE(mgr.OpenReader(id, 1, SimTime::Zero()).ok());
  ASSERT_TRUE(mgr.OpenReader(id, 2, SimTime::Zero()).ok());
  // Warm read: direct remote load, no refetch traffic.
  auto warm = mgr.ReadRegion(id, 1, SimTime::Zero());
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(mgr.refetch_bytes(), 0u);

  const SimTime t = SimTime::Zero() + SimDuration::Millis(1);
  auto write = mgr.WriteRegion(id, 0, t);
  ASSERT_TRUE(write.ok());
  EXPECT_EQ(mgr.invalidations(), 2u);
  EXPECT_FALSE(mgr.ReaderMapped(id, 1));
  EXPECT_FALSE(mgr.ReaderMapped(id, 2));
  // The shootdown unmap lands on the data plane's clock.
  mgr.clock().RunUntil(t + SimDuration::Seconds(1));
  EXPECT_FALSE(mgr.worker_mm(1).page_table().IsMapped(mgr.WindowOf(id)));

  // The revoked reader's next read re-maps and streams the region back in.
  auto cold = mgr.ReadRegion(id, 1, t + SimDuration::Seconds(1));
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(mgr.refetch_bytes(), kPages * kPageSize);
  EXPECT_GT(cold->latency, warm->latency);
  EXPECT_TRUE(mgr.ReaderMapped(id, 1));
}

TEST_F(ShStateTest, ReopenBeforeShootdownEventKeepsWindowMapped) {
  RegionManager mgr(Config(), 4, &tiered_, &backends_, nullptr);
  const RegionId id = *mgr.CreateRegion("r", kPages, 0, SimTime::Zero());
  ASSERT_TRUE(mgr.OpenReader(id, 1, SimTime::Zero()).ok());
  ASSERT_TRUE(mgr.WriteRegion(id, 0, SimTime::Zero()).ok());  // revokes reader 1
  // Reader 1 re-opens before the deferred shootdown unmap runs; the stale
  // event must not clobber the fresh mapping.
  ASSERT_TRUE(mgr.OpenReader(id, 1, SimTime::Zero()).ok());
  // Run past the shootdown event but not the 10s lease TTL (an idle reader
  // legitimately unmaps at expiry).
  mgr.clock().RunUntil(SimTime::Zero() + SimDuration::Seconds(1));
  EXPECT_TRUE(mgr.ReaderMapped(id, 1));
  EXPECT_TRUE(mgr.worker_mm(1).page_table().IsMapped(mgr.WindowOf(id)));
}

TEST_F(ShStateTest, SameHomeTransferIsMetadataOnly) {
  RegionManager mgr(Config(), 4, &tiered_, &backends_, nullptr);
  const RegionId id = *mgr.CreateRegion("r", kPages, 0, SimTime::Zero());
  // Workers 0 and 2 share pool home 0 (2 pool nodes).
  auto op = mgr.Transfer(id, 0, 2, SimTime::Zero());
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op->moved_bytes, 0u);
  EXPECT_EQ(mgr.migrations(), 0u);
  EXPECT_EQ(mgr.transfers(), 1u);
  EXPECT_EQ(mgr.OwnerOf(id), 2);
  EXPECT_EQ(mgr.HomeNodeOf(id), 0u);
  // Ownership moved: old owner's window is gone, new owner's carries the bit.
  EXPECT_FALSE(mgr.worker_mm(0).page_table().IsMapped(mgr.WindowOf(id)));
  auto pte = mgr.worker_mm(2).page_table().Lookup(mgr.WindowOf(id));
  ASSERT_TRUE(pte.has_value());
  EXPECT_TRUE(pte->flags.owner);
}

TEST_F(ShStateTest, CrossHomeTransferMigratesPoolToPool) {
  RegionManager mgr(Config(), 4, &tiered_, &backends_, nullptr);
  const RegionId id = *mgr.CreateRegion("r", kPages, 0, SimTime::Zero());
  auto meta = mgr.Transfer(id, 0, 2, SimTime::Zero());
  ASSERT_TRUE(meta.ok());
  auto op = mgr.Transfer(id, 2, 1, SimTime::Zero());  // home 0 -> home 1
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op->moved_bytes, kPages * kPageSize);
  EXPECT_GT(op->latency, meta->latency);
  EXPECT_EQ(mgr.migrations(), 1u);
  EXPECT_EQ(mgr.moved_bytes(), kPages * kPageSize);
  EXPECT_EQ(mgr.HomeNodeOf(id), 1u);
}

TEST_F(ShStateTest, TransferRequiresOwnership) {
  RegionManager mgr(Config(), 4, &tiered_, &backends_, nullptr);
  const RegionId id = *mgr.CreateRegion("r", kPages, 0, SimTime::Zero());
  auto op = mgr.Transfer(id, 1, 2, SimTime::Zero());
  EXPECT_FALSE(op.ok());
  EXPECT_EQ(op.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(ShStateTest, LeaseExpiryUnmapsIdleReader) {
  RegionManager mgr(Config(), 4, &tiered_, &backends_, nullptr);
  const RegionId id = *mgr.CreateRegion("r", kPages, 0, SimTime::Zero());
  ASSERT_TRUE(mgr.OpenReader(id, 3, SimTime::Zero()).ok());
  EXPECT_EQ(mgr.lease_grants(), 1u);
  mgr.clock().RunUntil(SimTime::Zero() + SimDuration::Seconds(11));
  EXPECT_EQ(mgr.leases_expired(), 1u);
  EXPECT_FALSE(mgr.ReaderMapped(id, 3));
  EXPECT_FALSE(mgr.worker_mm(3).page_table().IsMapped(mgr.WindowOf(id)));
}

TEST_F(ShStateTest, ReadRenewsLeaseAcrossTheOriginalWindow) {
  RegionManager mgr(Config(), 4, &tiered_, &backends_, nullptr);
  const RegionId id = *mgr.CreateRegion("r", kPages, 0, SimTime::Zero());
  ASSERT_TRUE(mgr.OpenReader(id, 3, SimTime::Zero()).ok());
  // Renew at t=8s; the original grant's expiry event at t=10s must see the
  // pushed-out deadline and keep the mapping.
  const SimTime renew = SimTime::Zero() + SimDuration::Seconds(8);
  mgr.clock().RunUntil(renew);
  ASSERT_TRUE(mgr.ReadRegion(id, 3, renew).ok());
  mgr.clock().RunUntil(SimTime::Zero() + SimDuration::Seconds(11));
  EXPECT_EQ(mgr.leases_expired(), 0u);
  EXPECT_TRUE(mgr.ReaderMapped(id, 3));
  // ...and the renewed window itself expires once left idle.
  mgr.clock().RunUntil(SimTime::Zero() + SimDuration::Seconds(30));
  EXPECT_EQ(mgr.leases_expired(), 1u);
  EXPECT_FALSE(mgr.ReaderMapped(id, 3));
}

TEST_F(ShStateTest, CrashVacatesOwnershipAndRecoveryReacquires) {
  RegionManager mgr(Config(), 4, &tiered_, &backends_, nullptr);
  const RegionId id = *mgr.CreateRegion("r", kPages, 0, SimTime::Zero());
  ASSERT_TRUE(mgr.WriteRegion(id, 0, SimTime::Zero()).ok());
  ASSERT_TRUE(mgr.OpenReader(id, 1, SimTime::Zero()).ok());

  mgr.ReleaseWorker(0);  // the owner's node crashes
  EXPECT_EQ(mgr.OwnerOf(id), -1);
  EXPECT_FALSE(mgr.worker_mm(0).page_table().IsMapped(mgr.WindowOf(id)));
  // The bytes survive in the pool: version is untouched.
  EXPECT_EQ(mgr.RegionVersion(id), 1u);

  auto op = mgr.AcquireOwnership(id, 2, SimTime::Zero());
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(mgr.ownership_recoveries(), 1u);
  EXPECT_EQ(mgr.OwnerOf(id), 2);
  ASSERT_TRUE(mgr.WriteRegion(id, 2, SimTime::Zero()).ok());
  EXPECT_EQ(mgr.RegionVersion(id), 2u);
}

TEST_F(ShStateTest, CrashedReaderLosesItsLease) {
  RegionManager mgr(Config(), 4, &tiered_, &backends_, nullptr);
  const RegionId id = *mgr.CreateRegion("r", kPages, 0, SimTime::Zero());
  ASSERT_TRUE(mgr.OpenReader(id, 1, SimTime::Zero()).ok());
  mgr.ReleaseWorker(1);
  EXPECT_FALSE(mgr.ReaderMapped(id, 1));
  EXPECT_FALSE(mgr.worker_mm(1).page_table().IsMapped(mgr.WindowOf(id)));
  // The stale expiry event finds the reader gone and does nothing.
  mgr.clock().RunUntilIdle();
  EXPECT_EQ(mgr.leases_expired(), 0u);
}

TEST_F(ShStateTest, DestroyFreesPoolPagesAndUnmapsEverything) {
  RegionManager mgr(Config(), 4, &tiered_, &backends_, nullptr);
  const uint64_t before = cxl_.used_bytes();
  const RegionId id = *mgr.CreateRegion("r", kPages, 0, SimTime::Zero());
  ASSERT_TRUE(mgr.OpenReader(id, 1, SimTime::Zero()).ok());
  EXPECT_GT(cxl_.used_bytes(), before);
  ASSERT_TRUE(mgr.DestroyRegion(id).ok());
  EXPECT_EQ(cxl_.used_bytes(), before);
  EXPECT_FALSE(mgr.worker_mm(0).page_table().IsMapped(mgr.WindowOf(id)));
  EXPECT_FALSE(mgr.worker_mm(1).page_table().IsMapped(mgr.WindowOf(id)));
  // Operations on a destroyed region fail cleanly.
  EXPECT_FALSE(mgr.WriteRegion(id, 0, SimTime::Zero()).ok());
}

// ------------------------------------------------------------ PipelineDriver

PipelineSpec ChainSpec() {
  return MakeChainPipeline(4, /*payload_pages=*/64, {"JS", "DH", "IR", "CR"});
}

std::vector<SimTime> Arrivals(uint32_t jobs) {
  Rng rng(7);
  return MakePipelineArrivals(jobs, /*rate_per_sec=*/20.0, rng);
}

TEST(PipelineDriverTest, ChainCompletesEveryStageWithSharedHandoffs) {
  ClusterConfig config;
  config.nodes = 4;
  config.shstate.enabled = true;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.DeployTable4Functions().ok());
  PipelineDriver driver(&cluster, {});
  ASSERT_TRUE(driver.Run(ChainSpec(), Arrivals(8)).ok());
  const PipelineRunStats& s = driver.stats();
  EXPECT_EQ(s.jobs_completed, 8u);
  EXPECT_EQ(s.stages_completed, 32u);
  EXPECT_EQ(cluster.accepted_invocations(), s.stages_completed);
  // Chain handoffs stay on the producer's node: pure metadata, zero fabric
  // bytes; the payload writes all land in the pool.
  EXPECT_EQ(s.handoff_bytes, 0u);
  EXPECT_GT(s.pool_write_bytes, 0u);
  // All regions were destroyed at job completion.
  RegionManager& sh = *cluster.shared_state();
  for (RegionId id = 0; id < sh.region_count(); ++id) {
    EXPECT_FALSE(sh.WriteRegion(id, 0, SimTime::Zero()).ok()) << "region " << id;
  }
}

TEST(PipelineDriverTest, FanOutExercisesReadersAndInvalidation) {
  ClusterConfig config;
  config.nodes = 4;
  config.shstate.enabled = true;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.DeployTable4Functions().ok());
  PipelineDriver driver(&cluster, {});
  const PipelineSpec spec = MakeFanOutFanInPipeline(3, 64, {"JS", "DH", "IR", "CR"});
  ASSERT_TRUE(driver.Run(spec, Arrivals(6)).ok());
  const PipelineRunStats& s = driver.stats();
  EXPECT_EQ(s.jobs_completed, 6u);
  EXPECT_EQ(s.stages_completed, 6u * 5u);
  EXPECT_EQ(cluster.accepted_invocations(), s.stages_completed);
  EXPECT_GT(s.invalidations, 0u);  // branch writes revoke sibling readers
}

TEST(PipelineDriverTest, BaselineModesMoveTwoCrossingsPerEdge) {
  ClusterConfig config;
  config.nodes = 2;
  Cluster cluster(config);  // shstate stays disabled: baselines don't need it
  ASSERT_TRUE(cluster.DeployTable4Functions().ok());
  PipelineDriverConfig driver_config;
  driver_config.mode = DataPlaneMode::kCopyThroughWorker;
  PipelineDriver driver(&cluster, driver_config);
  const PipelineSpec spec = ChainSpec();
  ASSERT_TRUE(driver.Run(spec, Arrivals(4)).ok());
  const uint64_t payload = 64 * kPageSize;
  EXPECT_EQ(driver.stats().handoff_bytes, 4u * spec.EdgeCount() * 2u * payload);
  EXPECT_EQ(driver.stats().jobs_completed, 4u);
}

TEST(PipelineDriverTest, RunsAreDeterministic) {
  auto run = [] {
    ClusterConfig config;
    config.nodes = 4;
    config.shstate.enabled = true;
    Cluster cluster(config);
    EXPECT_TRUE(cluster.DeployTable4Functions().ok());
    PipelineDriver driver(&cluster, {});
    EXPECT_TRUE(driver.Run(ChainSpec(), Arrivals(8)).ok());
    return std::make_tuple(driver.stats().stages_completed, driver.stats().handoff_bytes,
                           driver.stats().pool_write_bytes,
                           driver.stats().job_latency_ms.P99());
  };
  EXPECT_EQ(run(), run());
}

TEST(PipelineDriverTest, OwnerCrashRecoversWithZeroLoss) {
  ClusterConfig config;
  config.nodes = 4;
  config.shstate.enabled = true;
  config.faults.seed = 7;
  // The window must start after the first stage completions (~1s of cold
  // starts) or no region has an owner to lose yet.
  config.faults.Add(NodeCrashWindow(SimTime::Zero() + SimDuration::Millis(1000),
                                    SimTime::Zero() + SimDuration::Millis(1300),
                                    /*probability=*/1.0, /*node=*/1,
                                    /*restart_after=*/SimDuration::Seconds(2)));
  Cluster cluster(config);
  ASSERT_TRUE(cluster.DeployTable4Functions().ok());
  PipelineDriver driver(&cluster, {});
  ASSERT_TRUE(driver.Run(ChainSpec(), Arrivals(12)).ok());
  const PipelineRunStats& s = driver.stats();
  EXPECT_EQ(s.jobs_completed, 12u);
  EXPECT_EQ(s.stages_completed, 48u);
  // Zero accepted-invocation loss: every accepted stage ran to completion.
  EXPECT_EQ(cluster.accepted_invocations(), s.stages_completed);
  // The crashed node owned live regions; survivors re-acquired them.
  EXPECT_GT(s.ownership_recoveries, 0u);
}

}  // namespace
}  // namespace trenv
