// Tests for the file page-cache model used by the VM platform.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/simkernel/page_cache.h"

#include <set>

namespace trenv {
namespace {

TEST(PageCacheTest, InsertDedupsResidentPages) {
  PageCache cache("host");
  EXPECT_EQ(cache.Insert(1, 0, 10), 10u);
  EXPECT_EQ(cache.Insert(1, 5, 10), 5u);  // 5..9 already resident
  EXPECT_EQ(cache.cached_pages(), 15u);
  EXPECT_TRUE(cache.Contains(1, 0));
  EXPECT_TRUE(cache.Contains(1, 14));
  EXPECT_FALSE(cache.Contains(1, 15));
}

TEST(PageCacheTest, FilesAreIndependent) {
  PageCache cache("host");
  cache.Insert(1, 0, 10);
  EXPECT_EQ(cache.Insert(2, 0, 10), 10u);
  EXPECT_EQ(cache.cached_pages(), 20u);
  EXPECT_EQ(cache.DropFile(1), 10u);
  EXPECT_EQ(cache.cached_pages(), 10u);
  EXPECT_FALSE(cache.Contains(1, 0));
  EXPECT_TRUE(cache.Contains(2, 0));
}

TEST(PageCacheTest, ResidentInCountsPartialOverlap) {
  PageCache cache("guest");
  cache.Insert(7, 10, 10);
  cache.Insert(7, 30, 5);
  EXPECT_EQ(cache.ResidentIn(7, 0, 100), 15u);
  EXPECT_EQ(cache.ResidentIn(7, 15, 20), 10u);  // 15..19 and 30..34
  EXPECT_EQ(cache.ResidentIn(7, 20, 10), 0u);
}

TEST(PageCacheTest, InsertBridgingGapCoalesces) {
  PageCache cache("host");
  cache.Insert(1, 0, 5);
  cache.Insert(1, 10, 5);
  EXPECT_EQ(cache.Insert(1, 5, 5), 5u);
  EXPECT_EQ(cache.cached_pages(), 15u);
  EXPECT_EQ(cache.ResidentIn(1, 0, 15), 15u);
}

TEST(PageCacheTest, ClearReleasesEverything) {
  PageCache cache("host");
  cache.Insert(1, 0, 100);
  cache.Insert(2, 0, 100);
  cache.Clear();
  EXPECT_EQ(cache.cached_pages(), 0u);
  EXPECT_FALSE(cache.Contains(1, 50));
}

// Property test against a naive std::set model.
class PageCacheFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageCacheFuzzTest, MatchesSetModel) {
  Rng rng(GetParam());
  PageCache cache("fuzz");
  std::set<std::pair<FileId, uint64_t>> model;
  for (int op = 0; op < 400; ++op) {
    const FileId file = static_cast<FileId>(rng.NextBounded(3));
    const uint64_t start = rng.NextBounded(200);
    const uint64_t len = 1 + rng.NextBounded(40);
    if (rng.NextBool(0.8)) {
      uint64_t expected_new = 0;
      for (uint64_t p = start; p < start + len; ++p) {
        if (model.insert({file, p}).second) {
          ++expected_new;
        }
      }
      EXPECT_EQ(cache.Insert(file, start, len), expected_new);
    } else {
      uint64_t expected_drop = 0;
      for (auto it = model.begin(); it != model.end();) {
        if (it->first == file) {
          it = model.erase(it);
          ++expected_drop;
        } else {
          ++it;
        }
      }
      EXPECT_EQ(cache.DropFile(file), expected_drop);
    }
    EXPECT_EQ(cache.cached_pages(), model.size());
  }
  // Spot-check membership.
  for (uint64_t p = 0; p < 240; ++p) {
    for (FileId f = 0; f < 3; ++f) {
      EXPECT_EQ(cache.Contains(f, p), model.contains({f, p})) << "file " << f << " page " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageCacheFuzzTest, ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace trenv
