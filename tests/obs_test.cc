// Tests for the observability subsystem: tracer span nesting under virtual
// time, registry counter/gauge semantics, Chrome-trace JSON well-formedness
// (parsed back by a minimal JSON reader), and the disabled fast path.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/platform/testbed.h"
#include "src/sim/event_scheduler.h"

namespace trenv {
namespace {

// ---------------------------------------------------------------------------
// Registry

TEST(RegistryTest, CounterCreateOnFirstUseAndStablePointer) {
  obs::Registry registry;
  obs::Counter* c = registry.GetCounter("faults.minor");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 0.0);
  c->Increment();
  c->Add(2.5);
  EXPECT_DOUBLE_EQ(c->value(), 3.5);
  // Same name -> same instrument.
  EXPECT_EQ(registry.GetCounter("faults.minor"), c);
  EXPECT_EQ(registry.FindCounter("faults.minor"), c);
  EXPECT_EQ(registry.FindCounter("never.created"), nullptr);
}

TEST(RegistryTest, GaugeTracksHighWaterMark) {
  obs::Registry registry;
  obs::Gauge* g = registry.GetGauge("pool.occupancy");
  g->Set(10.0);
  g->Set(4.0);
  EXPECT_DOUBLE_EQ(g->value(), 4.0);
  EXPECT_DOUBLE_EQ(g->max(), 10.0);
  g->Add(8.0);
  EXPECT_DOUBLE_EQ(g->value(), 12.0);
  EXPECT_DOUBLE_EQ(g->max(), 12.0);
}

TEST(RegistryTest, ResetZeroesValuesButKeepsInstruments) {
  obs::Registry registry;
  obs::Counter* c = registry.GetCounter("a");
  obs::Gauge* g = registry.GetGauge("b");
  c->Add(7.0);
  g->Set(9.0);
  registry.Reset();
  // Cached pointers stay valid and read zero.
  EXPECT_DOUBLE_EQ(c->value(), 0.0);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_DOUBLE_EQ(g->max(), 0.0);
  EXPECT_EQ(registry.GetCounter("a"), c);
}

TEST(RegistryTest, IterationIsSortedByName) {
  obs::Registry registry;
  registry.GetCounter("zeta");
  registry.GetCounter("alpha");
  registry.GetCounter("mid");
  std::vector<std::string> names;
  for (const auto& [name, counter] : registry.counters()) {
    names.push_back(name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

// ---------------------------------------------------------------------------
// Tracer under virtual time

TEST(TracerTest, SpansAreStampedWithVirtualTime) {
  EventScheduler scheduler;
  obs::Tracer tracer;
  const obs::ProcessId pid =
      tracer.RegisterProcess("sim", [&] { return scheduler.now(); });

  obs::SpanId outer = obs::kInvalidSpanId;
  obs::SpanId inner = obs::kInvalidSpanId;
  scheduler.ScheduleAt(SimTime::Zero() + SimDuration::Millis(10),
                       [&] { outer = tracer.StartSpan({pid, 1}, "invocation"); });
  scheduler.ScheduleAt(SimTime::Zero() + SimDuration::Millis(12),
                       [&] { inner = tracer.StartSpan({pid, 1}, "restore.sandbox"); });
  scheduler.ScheduleAt(SimTime::Zero() + SimDuration::Millis(15),
                       [&] { tracer.EndSpan(inner); });
  scheduler.ScheduleAt(SimTime::Zero() + SimDuration::Millis(30),
                       [&] { tracer.EndSpan(outer); });
  scheduler.RunUntilIdle();

  const obs::Span* o = tracer.Find(outer);
  const obs::Span* i = tracer.Find(inner);
  ASSERT_NE(o, nullptr);
  ASSERT_NE(i, nullptr);
  EXPECT_EQ(o->start, SimTime::Zero() + SimDuration::Millis(10));
  EXPECT_EQ(o->duration(), SimDuration::Millis(20));
  EXPECT_EQ(i->duration(), SimDuration::Millis(3));
  // Implicit parenting: inner opened while outer was the innermost open span
  // on the same (pid, track).
  EXPECT_EQ(i->parent, outer);
  EXPECT_EQ(o->parent, obs::kInvalidSpanId);
  EXPECT_EQ(tracer.open_span_count(), 0u);
}

TEST(TracerTest, TracksDoNotParentAcrossEachOther) {
  EventScheduler scheduler;
  obs::Tracer tracer;
  const obs::ProcessId pid = tracer.RegisterProcess("sim", [&] { return scheduler.now(); });
  const obs::SpanId a = tracer.StartSpan({pid, 1}, "a");
  const obs::SpanId b = tracer.StartSpan({pid, 2}, "b");  // different track
  EXPECT_EQ(tracer.Find(b)->parent, obs::kInvalidSpanId);
  tracer.EndSpan(b);
  tracer.EndSpan(a);
}

TEST(TracerTest, RecordSpanAtDoesNotTouchOpenStack) {
  EventScheduler scheduler;
  obs::Tracer tracer;
  const obs::ProcessId pid = tracer.RegisterProcess("sim", [&] { return scheduler.now(); });
  const obs::SpanId open = tracer.StartSpan({pid, 1}, "invocation");
  const obs::SpanId detail = tracer.RecordSpanAt({pid, 1}, "mmt.attach", "restore",
                                                 SimTime::Zero() + SimDuration::Millis(1),
                                                 SimDuration::Millis(2), open);
  // The recorded span is closed, parented explicitly, and did not become the
  // implicit parent of the next StartSpan.
  EXPECT_FALSE(tracer.Find(detail)->open);
  EXPECT_EQ(tracer.Find(detail)->parent, open);
  const obs::SpanId next = tracer.StartSpan({pid, 1}, "exec");
  EXPECT_EQ(tracer.Find(next)->parent, open);
  tracer.EndSpan(next);
  tracer.EndSpan(open);
}

TEST(TracerTest, AnnotationsRoundTrip) {
  obs::Tracer tracer;
  const obs::ProcessId pid = tracer.RegisterProcess("sim", [] { return SimTime::Zero(); });
  const obs::SpanId id = tracer.StartSpan({pid, 1}, "fault.touch");
  tracer.Annotate(id, "pages", static_cast<int64_t>(42));
  tracer.Annotate(id, "fetch_ms", 1.5);
  tracer.Annotate(id, "tier", std::string("cxl"));
  tracer.EndSpan(id);
  const obs::Span* span = tracer.Find(id);
  ASSERT_EQ(span->args.size(), 3u);
  EXPECT_EQ(std::get<int64_t>(span->args[0].second), 42);
  EXPECT_DOUBLE_EQ(std::get<double>(span->args[1].second), 1.5);
  EXPECT_EQ(std::get<std::string>(span->args[2].second), "cxl");
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  obs::Tracer tracer;
  tracer.set_enabled(false);
  const obs::ProcessId pid = tracer.RegisterProcess("sim", [] { return SimTime::Zero(); });
  const obs::SpanId a = tracer.StartSpan({pid, 1}, "invocation");
  EXPECT_EQ(a, obs::kInvalidSpanId);
  tracer.EndSpan(a);  // safe no-op
  EXPECT_EQ(tracer.RecordSpanAt({pid, 1}, "x", "", SimTime::Zero(), SimDuration::Millis(1)),
            obs::kInvalidSpanId);
  EXPECT_EQ(tracer.Instant({pid, 1}, "marker"), obs::kInvalidSpanId);
  tracer.Annotate(a, "k", static_cast<int64_t>(1));  // safe no-op
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.open_span_count(), 0u);
}

TEST(TracerTest, ScopedSpanToleratesNullTracer) {
  obs::ScopedSpan span(nullptr, obs::Loc{}, "anything");
  span.Annotate("k", 1.0);
  EXPECT_EQ(span.id(), obs::kInvalidSpanId);
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, bools, null) used
// to verify the Chrome-trace exporter produces well-formed JSON.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, std::shared_ptr<JsonObject>,
               std::shared_ptr<JsonArray>>
      value;

  const JsonObject& object() const { return *std::get<std::shared_ptr<JsonObject>>(value); }
  const JsonArray& array() const { return *std::get<std::shared_ptr<JsonArray>>(value); }
  double number() const { return std::get<double>(value); }
  const std::string& str() const { return std::get<std::string>(value); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) { return ParseValue(out) && (SkipWs(), pos_ == text_.size()); }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out);
    }
    if (c == '[') {
      return ParseArray(out);
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) {
        return false;
      }
      out->value = s;
      return true;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out->value = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out->value = false;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out->value = nullptr;
      return true;
    }
    return ParseNumber(out);
  }
  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) {
      return false;
    }
    auto object = std::make_shared<JsonObject>();
    SkipWs();
    if (Consume('}')) {
      out->value = object;
      return true;
    }
    while (true) {
      std::string key;
      SkipWs();
      if (!ParseString(&key) || !Consume(':')) {
        return false;
      }
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      (*object)[key] = value;
      if (Consume(',')) {
        continue;
      }
      break;
    }
    if (!Consume('}')) {
      return false;
    }
    out->value = object;
    return true;
  }
  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) {
      return false;
    }
    auto array = std::make_shared<JsonArray>();
    SkipWs();
    if (Consume(']')) {
      out->value = array;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      array->push_back(value);
      if (Consume(',')) {
        continue;
      }
      break;
    }
    if (!Consume(']')) {
      return false;
    }
    out->value = array;
    return true;
  }
  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          case 'u':
            // \uXXXX: the exporter only emits these for control characters;
            // skip the four hex digits and substitute a placeholder.
            if (pos_ + 4 > text_.size()) {
              return false;
            }
            pos_ += 4;
            c = '?';
            break;
          default:
            c = esc;
        }
      }
      out->push_back(c);
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }
  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out->value = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Exporters

TEST(ExportTest, ChromeTraceIsWellFormedJson) {
  EventScheduler scheduler;
  obs::Tracer tracer;
  obs::Registry registry;
  registry.GetCounter("faults.minor")->Add(3.0);
  registry.GetGauge("memory")->Set(2048.0);
  const obs::ProcessId pid = tracer.RegisterProcess("T-CXL", [&] { return scheduler.now(); });

  const obs::SpanId root = tracer.StartSpan({pid, 7}, "invocation", "invocation");
  tracer.Annotate(root, "function", std::string("JS \"quoted\"\n"));
  tracer.RecordSpanAt({pid, 7}, "mmt.attach", "restore", SimTime::Zero(),
                      SimDuration::Micros(250), root);
  tracer.Instant({pid, 7}, "warm.hit", "invocation");
  tracer.EndSpan(root);

  std::ostringstream out;
  obs::WriteChromeTrace(tracer, out, &registry);
  const std::string text = out.str();

  JsonValue doc;
  ASSERT_TRUE(JsonParser(text).Parse(&doc)) << text;
  const JsonObject& top = doc.object();
  ASSERT_TRUE(top.contains("traceEvents"));
  const JsonArray& events = top.at("traceEvents").array();
  // 1 process_name metadata + 3 spans + 2 counter samples.
  ASSERT_EQ(events.size(), 6u);

  std::map<std::string, int> by_phase;
  bool saw_attach = false;
  for (const JsonValue& event : events) {
    const JsonObject& e = event.object();
    by_phase[e.at("ph").str()] += 1;
    ASSERT_TRUE(e.contains("pid"));
    ASSERT_TRUE(e.contains("ts") || e.at("ph").str() == "M");
    if (e.contains("name") && e.at("name").str() == "mmt.attach") {
      saw_attach = true;
      EXPECT_EQ(e.at("ph").str(), "X");
      EXPECT_DOUBLE_EQ(e.at("dur").number(), 250.0);  // microseconds
      EXPECT_EQ(e.at("cat").str(), "restore");
    }
  }
  EXPECT_TRUE(saw_attach);
  EXPECT_EQ(by_phase["M"], 1);
  EXPECT_EQ(by_phase["X"], 2);  // invocation + mmt.attach
  EXPECT_EQ(by_phase["i"], 1);  // warm.hit
  EXPECT_EQ(by_phase["C"], 2);  // counter + gauge samples
}

TEST(ExportTest, PrometheusDumpSanitizesNames) {
  obs::Registry registry;
  registry.GetCounter("pool.rdma.fetch_pages")->Add(12.0);
  registry.GetGauge("memory.used")->Set(7.0);
  std::ostringstream out;
  obs::WritePrometheusText(registry, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE pool_rdma_fetch_pages counter"), std::string::npos);
  EXPECT_NE(text.find("pool_rdma_fetch_pages 12"), std::string::npos);
  EXPECT_NE(text.find("memory_used 7"), std::string::npos);
  EXPECT_NE(text.find("memory_used_max 7"), std::string::npos);
  EXPECT_EQ(text.find('.'), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: a traced platform run produces the expected span hierarchy.

TEST(ObsIntegrationTest, TracedInvocationDecomposesIntoPhases) {
  obs::Tracer tracer;
  PlatformConfig config;
  config.tracer = &tracer;
  Testbed bed(SystemKind::kTrEnvCxl, config);
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  ASSERT_TRUE(bed.platform().Run(Schedule{{SimTime::Zero(), "JS"}}).ok());

  std::map<std::string, int> names;
  obs::SpanId root = obs::kInvalidSpanId;
  for (const obs::Span& span : tracer.spans()) {
    names[span.name] += 1;
    if (span.name == "invocation") {
      root = span.id;
    }
  }
  EXPECT_EQ(names["invocation"], 1);
  EXPECT_EQ(names["restore.sandbox"], 1);
  EXPECT_EQ(names["restore.process"], 1);
  EXPECT_EQ(names["restore.memory"], 1);
  EXPECT_EQ(names["exec"], 1);
  EXPECT_GE(names["mmt.attach"], 1);
  EXPECT_EQ(names["fault.touch"], 1);
  // All spans closed, and the phases nest under the invocation root.
  EXPECT_EQ(tracer.open_span_count(), 0u);
  for (const obs::Span& span : tracer.spans()) {
    EXPECT_FALSE(span.open) << span.name;
    if (span.name == "restore.sandbox" || span.name == "exec") {
      EXPECT_EQ(span.parent, root) << span.name;
    }
    EXPECT_GE(span.end, span.start) << span.name;
  }
  // Pool/mmt counters landed in the platform registry.
  const obs::Registry& stats = bed.platform().metrics().registry();
  ASSERT_NE(stats.FindCounter("mmt.attach_calls"), nullptr);
  EXPECT_GT(stats.FindCounter("mmt.attach_calls")->value(), 0.0);
}

TEST(ObsIntegrationTest, UntracedRunRecordsNoSpans) {
  obs::Tracer tracer;
  tracer.set_enabled(false);
  PlatformConfig config;
  config.tracer = &tracer;
  Testbed bed(SystemKind::kCriu, config);
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  ASSERT_TRUE(bed.platform().Run(Schedule{{SimTime::Zero(), "JS"}}).ok());
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(ObsIntegrationTest, FetchCpuSecondsMigratedToRegistry) {
  Testbed bed(SystemKind::kTrEnvRdma);
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  ASSERT_TRUE(bed.platform().Run(Schedule{{SimTime::Zero(), "JS"}}).ok());
  MetricsCollector& metrics = bed.platform().metrics();
  // The accessor reads through to the registry instrument.
  EXPECT_EQ(metrics.fetch_cpu_seconds(),
            metrics.registry().FindCounter("platform.fetch_cpu_seconds")->value());
  EXPECT_GT(metrics.fetch_cpu_seconds(), 0.0);
  metrics.Clear();
  EXPECT_EQ(metrics.fetch_cpu_seconds(), 0.0);
}

}  // namespace
}  // namespace trenv
