// Tests for the run-compressed page table, including property-style sweeps
// verifying the run representation matches a naive per-page reference model.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/common/rng.h"
#include "src/simkernel/page_table.h"

namespace trenv {
namespace {

PteFlags LocalValid() {
  PteFlags f;
  f.valid = true;
  f.pool = PoolKind::kLocalDram;
  return f;
}

PteFlags CxlShared() {
  PteFlags f;
  f.valid = true;
  f.write_protected = true;
  f.pool = PoolKind::kCxl;
  return f;
}

PteFlags RdmaLazy() {
  PteFlags f;
  f.valid = false;
  f.write_protected = true;
  f.pool = PoolKind::kRdma;
  return f;
}

TEST(PageTableTest, LookupUnmappedIsEmpty) {
  PageTable pt;
  EXPECT_FALSE(pt.Lookup(0).has_value());
  EXPECT_FALSE(pt.IsMapped(123));
  EXPECT_EQ(pt.mapped_pages(), 0u);
}

TEST(PageTableTest, MapAndLookupProgression) {
  PageTable pt;
  pt.MapRange(100, 10, CxlShared(), 5000, 777);
  ASSERT_TRUE(pt.IsMapped(100));
  ASSERT_TRUE(pt.IsMapped(109));
  EXPECT_FALSE(pt.IsMapped(110));
  auto pte = pt.Lookup(103);
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(pte->backing, 5003u);
  EXPECT_EQ(pte->content, 780u);
  EXPECT_TRUE(pte->flags.write_protected);
  EXPECT_EQ(pte->flags.pool, PoolKind::kCxl);
  EXPECT_EQ(pt.run_count(), 1u);
}

TEST(PageTableTest, ConstantContentRun) {
  PageTable pt;
  pt.MapRange(0, 8, LocalValid(), 100, 42, /*constant_content=*/true);
  for (Vpn v = 0; v < 8; ++v) {
    EXPECT_EQ(pt.Lookup(v)->content, 42u);
  }
}

TEST(PageTableTest, OverwriteSplitsRuns) {
  PageTable pt;
  pt.MapRange(0, 100, CxlShared(), 0, 0);
  // CoW the middle.
  pt.MapRange(40, 20, LocalValid(), 9000, 5555);
  EXPECT_EQ(pt.mapped_pages(), 100u);
  EXPECT_EQ(pt.run_count(), 3u);
  EXPECT_EQ(pt.Lookup(39)->flags.pool, PoolKind::kCxl);
  EXPECT_EQ(pt.Lookup(40)->flags.pool, PoolKind::kLocalDram);
  EXPECT_EQ(pt.Lookup(59)->backing, 9019u);
  EXPECT_EQ(pt.Lookup(60)->flags.pool, PoolKind::kCxl);
  EXPECT_EQ(pt.Lookup(60)->content, 60u);
}

TEST(PageTableTest, AdjacentCompatibleRunsMerge) {
  PageTable pt;
  pt.MapRange(0, 10, CxlShared(), 100, 200);
  pt.MapRange(10, 10, CxlShared(), 110, 210);
  EXPECT_EQ(pt.run_count(), 1u);
  EXPECT_EQ(pt.mapped_pages(), 20u);
}

TEST(PageTableTest, AdjacentIncompatibleRunsStaySplit) {
  PageTable pt;
  pt.MapRange(0, 10, CxlShared(), 100, 200);
  pt.MapRange(10, 10, CxlShared(), 500, 210);  // backing not contiguous
  EXPECT_EQ(pt.run_count(), 2u);
  pt.MapRange(20, 10, RdmaLazy(), 120, 220);  // different flags
  EXPECT_EQ(pt.run_count(), 3u);
}

TEST(PageTableTest, ConstantRunsMergeOnlyOnEqualContent) {
  PageTable pt;
  pt.MapRange(0, 4, LocalValid(), kNoBacking, 7, true);
  pt.MapRange(4, 4, LocalValid(), kNoBacking, 7, true);
  EXPECT_EQ(pt.run_count(), 1u);
  pt.MapRange(8, 4, LocalValid(), kNoBacking, 9, true);
  EXPECT_EQ(pt.run_count(), 2u);
}

TEST(PageTableTest, UnmapMiddle) {
  PageTable pt;
  pt.MapRange(0, 30, CxlShared(), 0, 0);
  EXPECT_EQ(pt.UnmapRange(10, 10), 10u);
  EXPECT_EQ(pt.mapped_pages(), 20u);
  EXPECT_TRUE(pt.IsMapped(9));
  EXPECT_FALSE(pt.IsMapped(10));
  EXPECT_FALSE(pt.IsMapped(19));
  EXPECT_TRUE(pt.IsMapped(20));
  // Remaining tail keeps its progression.
  EXPECT_EQ(pt.Lookup(25)->content, 25u);
}

TEST(PageTableTest, UnmapReturnsOnlyMappedCount) {
  PageTable pt;
  pt.MapRange(5, 5, LocalValid(), 0, 0);
  EXPECT_EQ(pt.UnmapRange(0, 20), 5u);
}

TEST(PageTableTest, ProtectRangeSetsWp) {
  PageTable pt;
  PteFlags writable = LocalValid();
  pt.MapRange(0, 10, writable, 0, 0);
  pt.ProtectRange(2, 3);
  EXPECT_FALSE(pt.Lookup(1)->flags.write_protected);
  EXPECT_TRUE(pt.Lookup(2)->flags.write_protected);
  EXPECT_TRUE(pt.Lookup(4)->flags.write_protected);
  EXPECT_FALSE(pt.Lookup(5)->flags.write_protected);
}

TEST(PageTableTest, CloneFromCopiesEverything) {
  PageTable a;
  a.MapRange(0, 10, CxlShared(), 100, 200);
  a.MapRange(50, 5, RdmaLazy(), 300, 400);
  PageTable b;
  b.CloneFrom(a);
  EXPECT_EQ(b.mapped_pages(), 15u);
  EXPECT_EQ(b.Lookup(3)->backing, 103u);
  EXPECT_EQ(b.Lookup(52)->flags.pool, PoolKind::kRdma);
  // Clone is independent.
  b.UnmapRange(0, 10);
  EXPECT_EQ(a.mapped_pages(), 15u);
}

TEST(PageTableTest, ForEachRunClipsToRange) {
  PageTable pt;
  pt.MapRange(0, 100, CxlShared(), 1000, 2000);
  uint64_t pages = 0;
  Vpn first = 0;
  uint64_t first_backing = 0;
  pt.ForEachRunIn(30, 40, [&](Vpn vpn, const PteRun& run) {
    first = vpn;
    first_backing = run.backing_base;
    pages += run.npages;
  });
  EXPECT_EQ(pages, 40u);
  EXPECT_EQ(first, 30u);
  EXPECT_EQ(first_backing, 1030u);
}

TEST(PageTableTest, CountPagesIf) {
  PageTable pt;
  pt.MapRange(0, 10, CxlShared(), 0, 0);
  pt.MapRange(20, 5, LocalValid(), 0, 0);
  EXPECT_EQ(pt.CountPagesIf([](const PteFlags& f) { return f.remote(); }), 10u);
  EXPECT_EQ(pt.CountPagesIf([](const PteFlags& f) { return f.valid; }), 15u);
}

TEST(PageTableTest, MetadataBytesScalesWithPages) {
  PageTable pt;
  pt.MapRange(0, BytesToPages(70 * kMiB), CxlShared(), 0, 0);
  // ~8 bytes per page for a 70 MiB image: ~143 KiB; well under 1 MiB.
  EXPECT_GT(pt.MetadataBytes(), 100 * kKiB);
  EXPECT_LT(pt.MetadataBytes(), kMiB);
}

// Property test: random operations must match a naive per-page model.
class PageTableFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageTableFuzzTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  PageTable pt;
  struct RefPte {
    PteFlags flags;
    uint64_t backing;
    PageContent content;
  };
  std::map<Vpn, RefPte> ref;
  constexpr Vpn kSpace = 512;

  for (int op = 0; op < 300; ++op) {
    const Vpn start = rng.NextBounded(kSpace);
    const uint64_t len = 1 + rng.NextBounded(kSpace - start);
    const int action = static_cast<int>(rng.NextBounded(3));
    if (action == 0) {
      PteFlags flags;
      flags.valid = rng.NextBool(0.7);
      flags.write_protected = rng.NextBool(0.5);
      flags.pool = static_cast<PoolKind>(rng.NextBounded(4));
      const bool constant = rng.NextBool(0.3);
      const uint64_t backing = rng.NextBounded(1 << 20);
      const PageContent content = rng.NextBounded(1 << 20);
      pt.MapRange(start, len, flags, backing, content, constant);
      for (uint64_t i = 0; i < len; ++i) {
        ref[start + i] = RefPte{flags, backing + i, constant ? content : content + i};
      }
    } else if (action == 1) {
      pt.UnmapRange(start, len);
      for (uint64_t i = 0; i < len; ++i) {
        ref.erase(start + i);
      }
    } else {
      pt.ProtectRange(start, len);
      for (uint64_t i = 0; i < len; ++i) {
        auto it = ref.find(start + i);
        if (it != ref.end()) {
          it->second.flags.write_protected = true;
        }
      }
    }
  }

  // Full-space comparison.
  uint64_t ref_pages = ref.size();
  EXPECT_EQ(pt.mapped_pages(), ref_pages);
  for (Vpn v = 0; v < kSpace; ++v) {
    auto got = pt.Lookup(v);
    auto it = ref.find(v);
    if (it == ref.end()) {
      EXPECT_FALSE(got.has_value()) << "vpn " << v;
    } else {
      ASSERT_TRUE(got.has_value()) << "vpn " << v;
      EXPECT_EQ(got->flags, it->second.flags) << "vpn " << v;
      EXPECT_EQ(got->backing, it->second.backing) << "vpn " << v;
      EXPECT_EQ(got->content, it->second.content) << "vpn " << v;
    }
  }
  // Run compression must never exceed the page count.
  EXPECT_LE(pt.run_count(), ref_pages + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTableFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace trenv
