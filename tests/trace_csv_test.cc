// Tests for the CSV trace loader / exporter.
#include <gtest/gtest.h>

#include <sstream>

#include "src/workload/trace_csv.h"

namespace trenv {
namespace {

TEST(TraceCsvTest, ParsesBasicTrace) {
  std::istringstream in(
      "minute,function,count\n"
      "0,JS,10\n"
      "0,IR,2\n"
      "1,JS,5\n"
      "# comment line\n"
      "\n"
      "3,CR,1\n");
  Rng rng(1);
  auto schedule = LoadTraceCsv(in, TraceCsvOptions{}, rng);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->size(), 18u);
  // Sorted and within the right minutes.
  for (size_t i = 1; i < schedule->size(); ++i) {
    EXPECT_LE((*schedule)[i - 1].arrival, (*schedule)[i].arrival);
  }
  int js_minute0 = 0;
  for (const auto& inv : *schedule) {
    if (inv.function == "JS" && inv.arrival.seconds() < 60.0) {
      ++js_minute0;
    }
  }
  EXPECT_EQ(js_minute0, 10);
  EXPECT_EQ(schedule->back().function, "CR");
  EXPECT_GE(schedule->back().arrival.seconds(), 180.0);
  EXPECT_LT(schedule->back().arrival.seconds(), 240.0);
}

TEST(TraceCsvTest, RejectsMalformedLines) {
  {
    std::istringstream in("0,JS\n");
    Rng rng(1);
    EXPECT_EQ(LoadTraceCsv(in, TraceCsvOptions{}, rng).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    std::istringstream in("abc,JS,4\n");
    Rng rng(1);
    EXPECT_EQ(LoadTraceCsv(in, TraceCsvOptions{}, rng).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    std::istringstream in("1, ,4\n");
    Rng rng(1);
    EXPECT_EQ(LoadTraceCsv(in, TraceCsvOptions{}, rng).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(TraceCsvTest, MissingFileReported) {
  Rng rng(1);
  EXPECT_EQ(LoadTraceCsvFile("/no/such/file.csv", TraceCsvOptions{}, rng).status().code(),
            StatusCode::kNotFound);
}

TEST(TraceCsvTest, BurstyMinutesFrontLoaded) {
  std::istringstream in("0,JS,200\n");
  TraceCsvOptions options;
  options.burst_probability = 1.0;
  options.burst_window_s = 5.0;
  Rng rng(3);
  auto schedule = LoadTraceCsv(in, options, rng);
  ASSERT_TRUE(schedule.ok());
  for (const auto& inv : *schedule) {
    EXPECT_LE(inv.arrival.seconds(), 5.0);
  }
}

TEST(TraceCsvTest, RoundTripPreservesPerMinuteCounts) {
  Rng rng(9);
  Schedule original =
      MakePoissonWorkload({"A", "B", "C"}, 2.0, SimDuration::Minutes(5), 0.4, rng);
  std::ostringstream csv;
  WriteTraceCsv(original, csv);
  std::istringstream in(csv.str());
  Rng rng2(10);
  auto reloaded = LoadTraceCsv(in, TraceCsvOptions{}, rng2);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->size(), original.size());
  // Per-(minute, function) counts are identical even though exact offsets
  // within each minute are re-randomized.
  auto counts = [](const Schedule& schedule) {
    std::map<std::pair<uint64_t, std::string>, int> out;
    for (const auto& inv : schedule) {
      out[{static_cast<uint64_t>(inv.arrival.seconds() / 60.0), inv.function}]++;
    }
    return out;
  };
  EXPECT_EQ(counts(original), counts(*reloaded));
}

}  // namespace
}  // namespace trenv
