// Tests for the fault-injection & failure-recovery subsystem (src/fault/):
// deterministic replay of injected faults, zero-loss rack failover through
// the shared snapshot pool, retry/backoff latency bounds, and the purity
// guarantee that an empty schedule changes nothing.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/fault/fault_schedule.h"
#include "src/fault/retry_policy.h"
#include "src/platform/cluster.h"
#include "src/platform/testbed.h"
#include "src/workload/traces.h"

namespace trenv {
namespace {

// ---------------------------------------------------------------------------
// RetryPolicy unit behaviour.

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff = SimDuration::Micros(100);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = SimDuration::Micros(350);
  EXPECT_EQ(policy.BackoffFor(0), SimDuration::Zero());
  EXPECT_EQ(policy.BackoffFor(1), SimDuration::Micros(100));
  EXPECT_EQ(policy.BackoffFor(2), SimDuration::Micros(200));
  EXPECT_EQ(policy.BackoffFor(3), SimDuration::Micros(350));  // capped, not 400
  EXPECT_EQ(policy.BackoffFor(9), SimDuration::Micros(350));
}

TEST(RetryPolicyTest, OverheadBoundCoversWorstCaseRetrySequence) {
  RetryPolicy policy;  // defaults: 4 attempts, 500us timeout, 200us backoff x2
  const SimDuration bound = policy.OverheadBound();
  // Three retries: 3 timeouts + backoffs of 200/400/800 us = 2.9 ms.
  EXPECT_EQ(bound, SimDuration::Micros(3 * 500 + 200 + 400 + 800));
  // A tight deadline dominates instead.
  policy.deadline = SimDuration::Micros(600);
  EXPECT_EQ(policy.OverheadBound(),
            policy.deadline + policy.attempt_timeout + policy.max_backoff);
}

// ---------------------------------------------------------------------------
// Injector determinism and schedule semantics.

TEST(FaultInjectorTest, SameSeedYieldsIdenticalInjectionSequence) {
  FaultSchedule schedule;
  schedule.seed = 99;
  schedule.Add(LinkFaultWindow(FaultDomain::kRdmaFlap, SimTime::Zero(),
                               SimTime::Zero() + SimDuration::Seconds(10), 0.4));
  schedule.Add(LinkFaultWindow(FaultDomain::kPageCorruption, SimTime::Zero(),
                               SimTime::Zero() + SimDuration::Seconds(10), 0.1));

  auto draw_sequence = [&schedule] {
    EventScheduler clock;
    FaultInjector injector(schedule);
    injector.BindClock(&clock);
    std::vector<std::tuple<bool, bool, double>> outcomes;
    for (int i = 0; i < 200; ++i) {
      const auto fault = injector.OnFetchAttempt(PoolKind::kRdma, 1);
      outcomes.emplace_back(fault.fail, fault.corrupt, fault.latency_multiplier);
    }
    return std::make_pair(outcomes, injector.injection_log());
  };
  const auto [outcomes_a, log_a] = draw_sequence();
  const auto [outcomes_b, log_b] = draw_sequence();
  EXPECT_EQ(outcomes_a, outcomes_b);
  ASSERT_EQ(log_a.size(), log_b.size());
  EXPECT_GT(log_a.size(), 0u);
  for (size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_EQ(log_a[i], log_b[i]) << "injection " << i << " diverged";
  }
}

TEST(FaultInjectorTest, DrawsNothingOutsideWindowsOrForOtherPools) {
  FaultSchedule schedule;
  schedule.Add(LinkFaultWindow(FaultDomain::kRdmaFlap,
                               SimTime::Zero() + SimDuration::Seconds(5),
                               SimTime::Zero() + SimDuration::Seconds(6), 1.0));
  EventScheduler clock;
  FaultInjector injector(schedule);
  injector.BindClock(&clock);
  // Before the window: p=1.0 flap must NOT fire (clock is at 0).
  for (int i = 0; i < 50; ++i) {
    const auto fault = injector.OnFetchAttempt(PoolKind::kRdma, 1);
    EXPECT_FALSE(fault.fail);
    EXPECT_FALSE(fault.corrupt);
    EXPECT_EQ(fault.latency_multiplier, 1.0);
  }
  // Inside the window but wrong pool: CXL fetches don't flap.
  clock.RunUntil(SimTime::Zero() + SimDuration::Seconds(5) + SimDuration::Millis(1));
  EXPECT_FALSE(injector.OnFetchAttempt(PoolKind::kCxl, 1).fail);
  EXPECT_TRUE(injector.OnFetchAttempt(PoolKind::kRdma, 1).fail);
  EXPECT_EQ(injector.injected(), 1u);
}

TEST(FaultInjectorTest, NodePlanIsDeterministicAndSorted) {
  FaultSchedule schedule;
  schedule.seed = 1234;
  schedule.Add(NodeCrashWindow(SimTime::Zero() + SimDuration::Seconds(10),
                               SimTime::Zero() + SimDuration::Seconds(20), 1.0, kAnyTarget,
                               SimDuration::Seconds(5)));
  schedule.Add(PoolPressureWindow(SimTime::Zero() + SimDuration::Seconds(2),
                                  SimTime::Zero() + SimDuration::Seconds(30), 0.5));

  FaultInjector a(schedule);
  FaultInjector b(schedule);
  // Perturb injector a's fetch RNG first: the node plan must not shift.
  EventScheduler clock;
  a.BindClock(&clock);
  (void)a.OnFetchAttempt(PoolKind::kRdma, 1);
  const auto plan_a = a.PlanNodeEvents(4);
  const auto plan_b = b.PlanNodeEvents(4);
  ASSERT_EQ(plan_a.size(), plan_b.size());
  ASSERT_EQ(plan_a.size(), 4u);  // pressure start/end + crash + restart
  for (size_t i = 0; i < plan_a.size(); ++i) {
    EXPECT_EQ(plan_a[i].time, plan_b[i].time);
    EXPECT_EQ(plan_a[i].node, plan_b[i].node);
    EXPECT_EQ(static_cast<int>(plan_a[i].kind), static_cast<int>(plan_b[i].kind));
    if (i > 0) {
      EXPECT_LE(plan_a[i - 1].time, plan_a[i].time);
    }
  }
  // The crash instant lands inside its window; the restart 5 s later.
  const auto& crash = plan_a[1];
  EXPECT_EQ(static_cast<int>(crash.kind),
            static_cast<int>(FaultInjector::NodeEvent::Kind::kCrash));
  EXPECT_GE(crash.time, SimTime::Zero() + SimDuration::Seconds(10));
  EXPECT_LT(crash.time, SimTime::Zero() + SimDuration::Seconds(20));
  EXPECT_LT(crash.node, 4u);
}

// ---------------------------------------------------------------------------
// Fetch-path retry behaviour against real backends.

TEST(FaultBackendTest, RetryBoundsFetchLatencyUnderRdmaFlaps) {
  // Acceptance (3): a 30% flap schedule may slow fetches but every fetch's
  // total latency stays within the policy's overhead bound plus one clean
  // transfer (generously capped — RDMA single-page transfers are microseconds
  // even at the jitter tail).
  FaultSchedule schedule;
  schedule.seed = 7;
  schedule.Add(LinkFaultWindow(FaultDomain::kRdmaFlap, SimTime::Zero(),
                               SimTime::Max(), 0.3));
  FaultInjector injector(schedule);
  EventScheduler clock;
  injector.BindClock(&clock);
  RdmaPool rdma(kGiB);
  rdma.BindFaultInjector(&injector);
  const SimDuration bound =
      injector.retry_policy().OverheadBound() + SimDuration::Millis(1);
  for (int i = 0; i < 2000; ++i) {
    const SimDuration latency = rdma.FetchLatency(1);
    EXPECT_GT(latency, SimDuration::Zero());
    EXPECT_LE(latency, bound) << "fetch " << i << " blew the retry bound";
  }
  EXPECT_GT(injector.retries(), 0u);
  EXPECT_GT(injector.injected(), 0u);
}

TEST(FaultBackendTest, CorruptionWastesTransfersThenFailsOpen) {
  FaultSchedule schedule;
  schedule.Add(LinkFaultWindow(FaultDomain::kPageCorruption, SimTime::Zero(),
                               SimTime::Max(), 1.0));
  FaultInjector injector(schedule);
  EventScheduler clock;
  injector.BindClock(&clock);
  NasPool nas(kGiB);
  nas.BindFaultInjector(&injector);
  const SimDuration faulty = nas.FetchLatency(4);
  // Every attempt corrupts: max_attempts transfers are wasted, then the
  // fail-open transfer delivers — at least (attempts+1)x the clean latency.
  NasPool clean(kGiB);
  const SimDuration base = clean.FetchLatency(4);
  EXPECT_GE(faulty, base * static_cast<double>(injector.retry_policy().max_attempts));
  EXPECT_EQ(injector.corrupt_fetches(), injector.retry_policy().max_attempts);
  EXPECT_EQ(injector.exhausted_fetches(), 1u);
}

TEST(FaultBackendTest, ContentFingerprintDetectsAnyPageFlip) {
  const uint64_t good = SnapshotDedupStore::Fingerprint(1000, 16);
  EXPECT_EQ(good, SnapshotDedupStore::Fingerprint(1000, 16));
  EXPECT_NE(good, SnapshotDedupStore::Fingerprint(1001, 16));  // shifted content
  EXPECT_NE(good, SnapshotDedupStore::Fingerprint(1000, 15));  // truncated run
}

TEST(FaultBackendTest, EmptyScheduleIsByteIdenticalToNoInjector) {
  // Acceptance (4): binding an idle injector must not perturb a single bit
  // of simulation output — no RNG draws, no latency scaling.
  auto digest = [](bool bind_idle_injector) {
    FaultSchedule empty;
    FaultInjector injector(empty);
    Testbed bed(SystemKind::kTrEnvRdma);
    if (bind_idle_injector) {
      bed.BindFaultInjector(&injector);
    }
    EXPECT_TRUE(bed.DeployTable4Functions().ok());
    Rng rng(7);
    Schedule schedule =
        MakePoissonWorkload({"DH", "JS", "IR"}, 4.0, SimDuration::Minutes(2), 0.3, rng);
    EXPECT_TRUE(bed.platform().Run(schedule).ok());
    const FunctionMetrics agg = bed.platform().metrics().Aggregate();
    return std::make_tuple(agg.invocations, agg.e2e_ms.Mean(), agg.e2e_ms.P99(),
                           agg.exec_ms.Mean(),
                           bed.platform().metrics().peak_memory_bytes());
  };
  EXPECT_EQ(digest(false), digest(true));
}

// ---------------------------------------------------------------------------
// Rack-level failover.

Schedule BurstSchedule(int n, SimDuration spacing) {
  Schedule schedule;
  const char* fns[] = {"JS", "DH", "IR"};
  for (int i = 0; i < n; ++i) {
    schedule.push_back({SimTime::Zero() + spacing * static_cast<double>(i),
                        fns[i % 3]});
  }
  return schedule;
}

TEST(ClusterFailoverTest, NodeCrashMidBurstLosesNothing) {
  // Acceptance (2): a node dies mid-burst; every accepted invocation still
  // completes, re-dispatched to survivors restoring from the shared pool.
  ClusterConfig config;
  config.nodes = 4;
  config.dispatch = ClusterConfig::Dispatch::kRoundRobin;
  config.faults.seed = 42;
  config.faults.Add(NodeCrashWindow(SimTime::Zero() + SimDuration::Millis(500),
                                    SimTime::Zero() + SimDuration::Millis(600), 1.0,
                                    /*node=*/1, /*restart_after=*/SimDuration::Zero()));
  Cluster cluster(config);
  ASSERT_TRUE(cluster.DeployTable4Functions().ok());
  ASSERT_TRUE(cluster.Run(BurstSchedule(60, SimDuration::Millis(25))).ok());

  ASSERT_NE(cluster.fault_injector(), nullptr);
  EXPECT_EQ(cluster.fault_injector()->crashes(), 1u);
  EXPECT_FALSE(cluster.node_alive(1));
  EXPECT_GT(cluster.fault_injector()->failovers(), 0u);
  // Zero loss: completions match acceptances exactly.
  EXPECT_EQ(cluster.accepted_invocations(), 60u);
  EXPECT_EQ(cluster.TotalInvocations(), cluster.accepted_invocations());
  EXPECT_FALSE(cluster.fault_injector()->recovery_ms().empty());
}

TEST(ClusterFailoverTest, RestartedNodeRejoinsDispatch) {
  ClusterConfig config;
  config.nodes = 2;
  config.dispatch = ClusterConfig::Dispatch::kRoundRobin;
  config.faults.seed = 5;
  config.faults.Add(NodeCrashWindow(SimTime::Zero() + SimDuration::Millis(100),
                                    SimTime::Zero() + SimDuration::Millis(150), 1.0,
                                    /*node=*/0, /*restart_after=*/SimDuration::Seconds(1)));
  Cluster cluster(config);
  ASSERT_TRUE(cluster.DeployTable4Functions().ok());
  // Burst spans well past the restart instant (~1.1s-1.2s).
  ASSERT_TRUE(cluster.Run(BurstSchedule(40, SimDuration::Millis(100))).ok());
  EXPECT_EQ(cluster.fault_injector()->crashes(), 1u);
  EXPECT_EQ(cluster.fault_injector()->restarts(), 1u);
  EXPECT_TRUE(cluster.node_alive(0));
  EXPECT_EQ(cluster.TotalInvocations(), cluster.accepted_invocations());
  // Node 0 served invocations again after rejoining.
  EXPECT_GT(cluster.node(0).metrics().Aggregate().invocations, 0u);
}

TEST(ClusterFailoverTest, WholeRackOutageDefersUntilRestart) {
  ClusterConfig config;
  config.nodes = 1;
  config.faults.seed = 9;
  config.faults.Add(NodeCrashWindow(SimTime::Zero() + SimDuration::Millis(100),
                                    SimTime::Zero() + SimDuration::Millis(110), 1.0,
                                    /*node=*/0, /*restart_after=*/SimDuration::Seconds(2)));
  Cluster cluster(config);
  ASSERT_TRUE(cluster.DeployTable4Functions().ok());
  // Arrivals land while the only node is down: they defer, then flush.
  ASSERT_TRUE(cluster.Run(BurstSchedule(30, SimDuration::Millis(100))).ok());
  EXPECT_GT(cluster.fault_injector()->deferred(), 0u);
  EXPECT_EQ(cluster.fault_injector()->restarts(), 1u);
  EXPECT_EQ(cluster.TotalInvocations(), cluster.accepted_invocations());
  EXPECT_EQ(cluster.accepted_invocations(), 30u);
}

TEST(ClusterFailoverTest, AllNodesDeadWithoutInjectorNamesTheFailure) {
  // Without a fault campaign there is no deferred queue: submitting to a
  // rack with no live node must fail loudly, not silently park work.
  ClusterConfig config;
  config.nodes = 2;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.DeployTable4Functions().ok());
  const Status ok = cluster.Submit(SimTime::Zero(), "JS");
  EXPECT_TRUE(ok.ok());
  // An unknown function is rejected by the chosen node, and the error names
  // the node (satellite: actionable dispatch errors).
  const Status bad = cluster.Submit(SimTime::Zero(), "no-such-function");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("node "), std::string::npos) << bad.message();
  EXPECT_NE(bad.message().find("no-such-function"), std::string::npos) << bad.message();
}

TEST(ClusterFailoverTest, PoolPressureForcesEvictionAndCostsWarmth) {
  auto warm_starts = [](bool pressure) {
    ClusterConfig config;
    config.nodes = 2;
    // Small per-node cap: even floored at kSoftMemCapScaleFloor the squeezed
    // cap sits below one instance's RSS, so the window evicts everything.
    config.node_config.soft_mem_cap_bytes = 8 * kMiB;
    config.faults.seed = 11;
    if (pressure) {
      // Crush the soft cap to near zero for the middle of the run: idle
      // instances get evicted, so later arrivals can't hit warm.
      config.faults.Add(PoolPressureWindow(SimTime::Zero() + SimDuration::Seconds(1),
                                           SimTime::Zero() + SimDuration::Seconds(4),
                                           /*cap_scale=*/0.0));
    } else {
      // Keep an injector active (schedules are compared like-for-like) but
      // point the pressure at a node index that doesn't exist.
      config.faults.Add(PoolPressureWindow(SimTime::Zero() + SimDuration::Seconds(1),
                                           SimTime::Zero() + SimDuration::Seconds(4),
                                           /*cap_scale=*/0.0, /*node=*/77));
    }
    Cluster cluster(config);
    EXPECT_TRUE(cluster.DeployTable4Functions().ok());
    Schedule schedule;
    for (int i = 0; i < 40; ++i) {
      schedule.push_back({SimTime::Zero() + SimDuration::Millis(i * 150), "JS"});
    }
    EXPECT_TRUE(cluster.Run(schedule).ok());
    EXPECT_EQ(cluster.TotalInvocations(), 40u);
    return cluster.AggregateMetrics().warm_starts;
  };
  EXPECT_LT(warm_starts(true), warm_starts(false));
}

TEST(ClusterFailoverTest, ChaosRunIsDeterministic) {
  // Acceptance (1) at rack scale: the same seed + schedule reproduces the
  // same injection log, the same fault counters, and the same latencies.
  auto run = [] {
    ClusterConfig config;
    config.nodes = 3;
    config.dispatch = ClusterConfig::Dispatch::kRoundRobin;
    config.faults.seed = 77;
    config.faults.Add(NodeCrashWindow(SimTime::Zero() + SimDuration::Seconds(1),
                                      SimTime::Zero() + SimDuration::Seconds(2), 1.0,
                                      kAnyTarget, SimDuration::Seconds(1)));
    config.faults.Add(LinkFaultWindow(FaultDomain::kCxlPortDegrade,
                                      SimTime::Zero() + SimDuration::Seconds(2),
                                      SimTime::Zero() + SimDuration::Seconds(3), 1.0,
                                      /*severity=*/3.0));
    Cluster cluster(config);
    EXPECT_TRUE(cluster.DeployTable4Functions().ok());
    Rng rng(13);
    Schedule schedule =
        MakePoissonWorkload({"JS", "DH", "IR"}, 6.0, SimDuration::Seconds(5), 0.4, rng);
    EXPECT_TRUE(cluster.Run(schedule).ok());
    const FunctionMetrics agg = cluster.AggregateMetrics();
    return std::make_tuple(cluster.fault_injector()->injection_log(),
                           cluster.fault_injector()->failovers(),
                           cluster.accepted_invocations(), agg.invocations,
                           agg.e2e_ms.Mean(), agg.e2e_ms.P99());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(std::get<0>(a).size(), std::get<0>(b).size());
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::get<2>(a), std::get<3>(a)) << "chaos run lost invocations";
}

}  // namespace
}  // namespace trenv
