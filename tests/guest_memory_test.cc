// Tests for two-dimensional paging / guest memory (paper section 8.1.3).
#include <gtest/gtest.h>

#include "src/common/cost_model.h"
#include "src/mempool/cxl_pool.h"
#include "src/mempool/rdma_pool.h"
#include "src/vm/guest_memory.h"

namespace trenv {
namespace {

class GuestMemoryTest : public ::testing::Test {
 protected:
  GuestMemoryTest() : cxl_(16 * kGiB), rdma_(16 * kGiB), frames_(16 * kGiB), api_(&backends_) {
    backends_.Register(&cxl_);
    backends_.Register(&rdma_);
  }
  FaultHandler Handler() { return FaultHandler(&frames_, &backends_); }

  CxlPool cxl_;
  RdmaPool rdma_;
  FrameAllocator frames_;
  BackendRegistry backends_;
  MmtApi api_;
};

TEST_F(GuestMemoryTest, FreshGuestZeroFillsOnDemand) {
  GuestMemory guest(256 * kMiB);
  FaultHandler handler = Handler();
  auto stats = guest.Touch(0, 64, /*write=*/false, handler);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->minor_faults, 64u);
  EXPECT_EQ(guest.ResidentLocalPages(), 64u);
  // Each fresh touch took a VM exit.
  EXPECT_EQ(guest.ept_violations(), 64u);
}

TEST_F(GuestMemoryTest, FullCopyRestoreMatchesChLatency) {
  GuestMemory guest(2 * kGiB);
  auto latency = guest.RestoreByCopy(2 * kGiB, &frames_);
  ASSERT_TRUE(latency.ok());
  // >700 ms for a 2 GiB guest (paper Fig 23 discussion).
  EXPECT_GT(latency->millis(), 700.0);
  EXPECT_EQ(guest.ResidentLocalPages(), BytesToPages(2 * kGiB));
}

TEST_F(GuestMemoryTest, TemplateRestorePrePopulatesEpt) {
  auto tmpl = BuildGuestTemplate(&api_, &cxl_, "blackjack-guest", 512 * kMiB, 0xB1AC);
  ASSERT_TRUE(tmpl.ok());
  GuestMemory guest(2 * kGiB);
  auto latency = guest.RestoreByTemplate(&api_, *tmpl);
  ASSERT_TRUE(latency.ok());
  // Milliseconds, not hundreds of milliseconds.
  EXPECT_LT(latency->millis(), 10.0);
  EXPECT_EQ(guest.ResidentLocalPages(), 0u);
  EXPECT_EQ(guest.SharedRemotePages(), BytesToPages(512 * kMiB));

  // Pre-populated second-level entries: reads take NO VM exit.
  FaultHandler handler = Handler();
  auto reads = guest.Touch(0, 1024, /*write=*/false, handler);
  ASSERT_TRUE(reads.ok());
  EXPECT_EQ(reads->direct_remote, 1024u);
  EXPECT_EQ(guest.ept_violations(), 0u);

  // Writes CoW with an exit each, privately to this VM.
  auto writes = guest.Touch(0, 16, /*write=*/true, handler);
  ASSERT_TRUE(writes.ok());
  EXPECT_EQ(writes->cow_faults, 16u);
  EXPECT_EQ(guest.ept_violations(), 16u);
  EXPECT_EQ(guest.ResidentLocalPages(), 16u);
}

TEST_F(GuestMemoryTest, TwoGuestsShareOneImage) {
  auto tmpl = BuildGuestTemplate(&api_, &cxl_, "shared-guest", 256 * kMiB, 0x5A5A);
  ASSERT_TRUE(tmpl.ok());
  const uint64_t pool_used = cxl_.used_bytes();

  GuestMemory vm_a(1 * kGiB);
  GuestMemory vm_b(1 * kGiB);
  ASSERT_TRUE(vm_a.RestoreByTemplate(&api_, *tmpl).ok());
  ASSERT_TRUE(vm_b.RestoreByTemplate(&api_, *tmpl).ok());
  EXPECT_EQ(cxl_.used_bytes(), pool_used);  // no extra pool space

  FaultHandler handler = Handler();
  ASSERT_TRUE(vm_a.Touch(0, 8, true, handler).ok());
  // A's writes are invisible to B.
  auto b_read = handler.ReadPage(vm_b.ept(), 0);
  ASSERT_TRUE(b_read.ok());
  EXPECT_EQ(*b_read, 0x5A5Au);
}

TEST_F(GuestMemoryTest, LazyRdmaGuestPaysExitPlusFetch) {
  auto tmpl = BuildGuestTemplate(&api_, &rdma_, "rdma-guest", 64 * kMiB, 0x1D);
  ASSERT_TRUE(tmpl.ok());
  GuestMemory guest(1 * kGiB);
  ASSERT_TRUE(guest.RestoreByTemplate(&api_, *tmpl).ok());
  FaultHandler handler = Handler();
  auto stats = guest.Touch(0, 256, false, handler);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->major_faults, 256u);
  EXPECT_EQ(guest.ept_violations(), 256u);
  // Exit cost is layered on top of the fabric fetch.
  EXPECT_GT(stats->latency, cost::kEptViolation * 256.0);
}

TEST_F(GuestMemoryTest, GrowthBeyondImageStaysLocal) {
  auto tmpl = BuildGuestTemplate(&api_, &cxl_, "grow-guest", 64 * kMiB, 0x60);
  ASSERT_TRUE(tmpl.ok());
  GuestMemory guest(1 * kGiB);
  ASSERT_TRUE(guest.RestoreByTemplate(&api_, *tmpl).ok());
  // The guest allocates past its snapshot image (fresh anonymous memory);
  // this must zero-fill locally, not touch the pool.
  FaultHandler handler = Handler();
  const Vaddr beyond = 64 * kMiB;
  auto grow = guest.ept().GrowVma(0, 0);  // no-op growth is rejected
  EXPECT_FALSE(grow.ok());
  // Map fresh RAM after the image.
  ASSERT_TRUE(guest.ept()
                  .AddVma(MakeAnonVma(PageAlignUp(beyond), 16 * kPageSize,
                                      Protection::ReadWrite(), "guest-ram-tail"))
                  .ok());
  auto stats = guest.Touch(PageAlignUp(beyond), 16, true, handler);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->minor_faults, 16u);
  auto pte = guest.ept().page_table().Lookup(AddrToVpn(PageAlignUp(beyond)));
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(pte->flags.pool, PoolKind::kLocalDram);
}

}  // namespace
}  // namespace trenv
