// Tests for the mm-template API: the create/add_map/setup_pt/attach flow of
// paper Fig 11/12, including multi-attach sharing and cross-pool templates.
#include <gtest/gtest.h>

#include "src/common/cost_model.h"
#include "src/mempool/cxl_pool.h"
#include "src/mempool/rdma_pool.h"
#include "src/simkernel/fault_handler.h"
#include "src/mmtemplate/api.h"

namespace trenv {
namespace {

constexpr Vaddr kText = 0x400000;
constexpr Vaddr kHeap = 0x7fff4000000;

class MmtApiTest : public ::testing::Test {
 protected:
  MmtApiTest() : cxl_(kGiB), rdma_(kGiB), frames_(kGiB), api_(&backends_) {
    backends_.Register(&cxl_);
    backends_.Register(&rdma_);
  }

  // Builds the paper's Fig-12 style template: one CXL-backed region.
  MmtId BuildSimpleTemplate(uint64_t npages, PageContent content, PoolOffset* out_base) {
    MmtId id = api_.MmtCreate("func-x");
    EXPECT_TRUE(api_.MmtAddMap(id, kHeap, npages * kPageSize, Protection::ReadWrite(), true, -1,
                               0, "[heap]")
                    .ok());
    auto base = cxl_.AllocatePages(npages);
    EXPECT_TRUE(base.ok());
    EXPECT_TRUE(cxl_.WriteContent(*base, npages, content).ok());
    EXPECT_TRUE(api_.MmtSetupPt(id, kHeap, npages * kPageSize, *base, PoolKind::kCxl).ok());
    if (out_base != nullptr) {
      *out_base = *base;
    }
    return id;
  }

  CxlPool cxl_;
  RdmaPool rdma_;
  BackendRegistry backends_;
  FrameAllocator frames_;
  MmtApi api_;
};

TEST_F(MmtApiTest, CreateLookupDestroy) {
  MmtId id = api_.MmtCreate("f");
  EXPECT_NE(id, kInvalidMmtId);
  EXPECT_TRUE(api_.registry().Lookup(id).ok());
  EXPECT_TRUE(api_.MmtDestroy(id).ok());
  EXPECT_EQ(api_.registry().Lookup(id).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(api_.MmtDestroy(id).code(), StatusCode::kNotFound);
}

TEST_F(MmtApiTest, SetupPtRequiresAddMapFirst) {
  MmtId id = api_.MmtCreate("f");
  auto base = cxl_.AllocatePages(4);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(cxl_.WriteContent(*base, 4, 1).ok());
  EXPECT_EQ(api_.MmtSetupPt(id, kHeap, 4 * kPageSize, *base, PoolKind::kCxl).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(MmtApiTest, SetupPtRequiresContentInPool) {
  MmtId id = api_.MmtCreate("f");
  ASSERT_TRUE(
      api_.MmtAddMap(id, kHeap, 4 * kPageSize, Protection::ReadWrite(), true, -1, 0).ok());
  // Pool offset 500 was never written by the deduplicator.
  EXPECT_EQ(api_.MmtSetupPt(id, kHeap, 4 * kPageSize, 500, PoolKind::kCxl).status().code(),
            StatusCode::kNotFound);
}

TEST_F(MmtApiTest, CxlTemplateInstallsValidWriteProtectedPtes) {
  MmtId id = BuildSimpleTemplate(16, 100, nullptr);
  auto tmpl = api_.registry().Lookup(id);
  ASSERT_TRUE(tmpl.ok());
  auto pte = (*tmpl)->page_table().Lookup(AddrToVpn(kHeap));
  ASSERT_TRUE(pte.has_value());
  EXPECT_TRUE(pte->flags.valid);
  EXPECT_TRUE(pte->flags.write_protected);
  EXPECT_EQ(pte->flags.pool, PoolKind::kCxl);
}

TEST_F(MmtApiTest, RdmaTemplateInstallsInvalidLazyPtes) {
  MmtId id = api_.MmtCreate("f");
  ASSERT_TRUE(
      api_.MmtAddMap(id, kHeap, 8 * kPageSize, Protection::ReadWrite(), true, -1, 0).ok());
  auto base = rdma_.AllocatePages(8);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(rdma_.WriteContent(*base, 8, 700).ok());
  ASSERT_TRUE(api_.MmtSetupPt(id, kHeap, 8 * kPageSize, *base, PoolKind::kRdma).ok());
  auto tmpl = api_.registry().Lookup(id);
  auto pte = (*tmpl)->page_table().Lookup(AddrToVpn(kHeap));
  ASSERT_TRUE(pte.has_value());
  EXPECT_FALSE(pte->flags.valid);
  EXPECT_EQ(pte->flags.pool, PoolKind::kRdma);
}

TEST_F(MmtApiTest, AttachCopiesMetadataOnly) {
  const uint64_t npages = BytesToPages(70 * kMiB);
  MmtId id = BuildSimpleTemplate(npages, 42, nullptr);
  MmStruct mm;
  auto result = api_.MmtAttach(id, &mm);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->mapped_pages, npages);
  // Metadata, not 70 MiB.
  EXPECT_LT(result->metadata_bytes, kMiB);
  // Attach is fast: well under 10 ms (the repurposing budget).
  EXPECT_LT(result->latency.millis(), 1.0);
  // The process really maps the pages.
  EXPECT_EQ(mm.page_table().mapped_pages(), npages);
  EXPECT_EQ(mm.VirtualBytes(), npages * kPageSize);
  // But no local frames were consumed.
  EXPECT_EQ(frames_.used_pages(), 0u);
}

TEST_F(MmtApiTest, AttachTwiceToSameProcessFails) {
  MmtId id = BuildSimpleTemplate(4, 9, nullptr);
  MmStruct mm;
  ASSERT_TRUE(api_.MmtAttach(id, &mm).ok());
  EXPECT_EQ(api_.MmtAttach(id, &mm).status().code(), StatusCode::kAlreadyExists);
}

TEST_F(MmtApiTest, MultiAttachSharesUntilWrite) {
  MmtId id = BuildSimpleTemplate(8, 1000, nullptr);
  MmStruct a;
  MmStruct b;
  ASSERT_TRUE(api_.MmtAttach(id, &a).ok());
  ASSERT_TRUE(api_.MmtAttach(id, &b).ok());
  EXPECT_EQ((*api_.registry().Lookup(id))->attach_count(), 2u);

  FaultHandler handler(&frames_, &backends_);
  // Both read the shared image.
  EXPECT_EQ(*handler.ReadPage(a, kHeap), 1000u);
  EXPECT_EQ(*handler.ReadPage(b, kHeap), 1000u);
  // A writes; B is unaffected; a third attach still sees the image.
  ASSERT_TRUE(handler.WritePage(a, kHeap, 0xD00D).ok());
  EXPECT_EQ(*handler.ReadPage(a, kHeap), 0xD00Du);
  EXPECT_EQ(*handler.ReadPage(b, kHeap), 1000u);
  MmStruct c;
  ASSERT_TRUE(api_.MmtAttach(id, &c).ok());
  EXPECT_EQ(*handler.ReadPage(c, kHeap), 1000u);
  // Exactly one local page was instantiated (A's CoW copy).
  EXPECT_EQ(frames_.used_pages(), 1u);
}

TEST_F(MmtApiTest, OverlappingTemplateRegionsShareOnePoolBlock) {
  // Fig 12: snapshots of functions X and Y both contain region R2 backed by
  // the same Block 2 on remote memory.
  auto block2 = cxl_.AllocatePages(4);
  ASSERT_TRUE(block2.ok());
  ASSERT_TRUE(cxl_.WriteContent(*block2, 4, 2222).ok());

  MmtId x = api_.MmtCreate("func-x");
  MmtId y = api_.MmtCreate("func-y");
  ASSERT_TRUE(api_.MmtAddMap(x, 0x7FFF4000, 4 * kPageSize, Protection::ReadOnly(), true, -1, 0)
                  .ok());
  ASSERT_TRUE(api_.MmtAddMap(y, 0x5FFF0000, 4 * kPageSize, Protection::ReadOnly(), true, -1, 0)
                  .ok());
  ASSERT_TRUE(api_.MmtSetupPt(x, 0x7FFF4000, 4 * kPageSize, *block2, PoolKind::kCxl).ok());
  ASSERT_TRUE(api_.MmtSetupPt(y, 0x5FFF0000, 4 * kPageSize, *block2, PoolKind::kCxl).ok());

  MmStruct mm_x;
  MmStruct mm_y;
  ASSERT_TRUE(api_.MmtAttach(x, &mm_x).ok());
  ASSERT_TRUE(api_.MmtAttach(y, &mm_y).ok());
  FaultHandler handler(&frames_, &backends_);
  // Different virtual addresses, same physical content.
  EXPECT_EQ(*handler.ReadPage(mm_x, 0x7FFF4000 + kPageSize), 2223u);
  EXPECT_EQ(*handler.ReadPage(mm_y, 0x5FFF0000 + kPageSize), 2223u);
  // And the pool holds one copy: 4 pages total.
  EXPECT_EQ(cxl_.stored_pages(), 4u);
}

TEST_F(MmtApiTest, MixedPoolTemplate) {
  // Hot region on CXL, cold region on RDMA — one template, two pools.
  MmtId id = api_.MmtCreate("mixed");
  ASSERT_TRUE(
      api_.MmtAddMap(id, kText, 4 * kPageSize, Protection::ReadExec(), true, 3, 0, ".text").ok());
  ASSERT_TRUE(
      api_.MmtAddMap(id, kHeap, 4 * kPageSize, Protection::ReadWrite(), true, -1, 0, "[heap]")
          .ok());
  auto hot = cxl_.AllocatePages(4);
  auto cold = rdma_.AllocatePages(4);
  ASSERT_TRUE(hot.ok() && cold.ok());
  ASSERT_TRUE(cxl_.WriteContent(*hot, 4, 10).ok());
  ASSERT_TRUE(rdma_.WriteContent(*cold, 4, 20).ok());
  ASSERT_TRUE(api_.MmtSetupPt(id, kText, 4 * kPageSize, *hot, PoolKind::kCxl).ok());
  ASSERT_TRUE(api_.MmtSetupPt(id, kHeap, 4 * kPageSize, *cold, PoolKind::kRdma).ok());

  MmStruct mm;
  ASSERT_TRUE(api_.MmtAttach(id, &mm).ok());
  FaultHandler handler(&frames_, &backends_);
  auto text_read = handler.Access(mm, kText, false);
  ASSERT_TRUE(text_read.ok());
  EXPECT_EQ(text_read->kind, AccessKind::kDirectRemote);
  auto heap_read = handler.Access(mm, kHeap, false);
  ASSERT_TRUE(heap_read.ok());
  EXPECT_EQ(heap_read->kind, AccessKind::kMajorFault);
}

TEST_F(MmtApiTest, AttachLatencyScalesWithImageSize) {
  MmtId small = BuildSimpleTemplate(BytesToPages(4 * kMiB), 1, nullptr);
  MmStruct mm_small;
  auto r_small = api_.MmtAttach(small, &mm_small);
  ASSERT_TRUE(r_small.ok());

  MmtId big = api_.MmtCreate("big");
  const uint64_t big_pages = BytesToPages(800 * kMiB);
  ASSERT_TRUE(api_.MmtAddMap(big, kHeap, big_pages * kPageSize, Protection::ReadWrite(), true,
                             -1, 0)
                  .ok());
  auto base = cxl_.AllocatePages(big_pages);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(cxl_.WriteContent(*base, big_pages, 5).ok());
  ASSERT_TRUE(api_.MmtSetupPt(big, kHeap, big_pages * kPageSize, *base, PoolKind::kCxl).ok());
  MmStruct mm_big;
  auto r_big = api_.MmtAttach(big, &mm_big);
  ASSERT_TRUE(r_big.ok());

  EXPECT_GT(r_big->latency, r_small->latency);
  // Even an 800 MiB image attaches in ~1 ms class (vs >700 ms full copy).
  EXPECT_LT(r_big->latency.millis(), 10.0);
}

TEST_F(MmtApiTest, MetadataRegistryAccounting) {
  BuildSimpleTemplate(64, 1, nullptr);
  BuildSimpleTemplate(64, 2, nullptr);
  EXPECT_EQ(api_.registry().size(), 2u);
  EXPECT_GT(api_.registry().TotalMetadataBytes(), 0u);
}

}  // namespace
}  // namespace trenv
