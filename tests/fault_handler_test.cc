// Tests for MmStruct + FaultHandler: the paper's PTE state machine.
#include <gtest/gtest.h>

#include "src/common/cost_model.h"
#include "src/mempool/cxl_pool.h"
#include "src/mempool/rdma_pool.h"
#include "src/simkernel/fault_handler.h"

namespace trenv {
namespace {

class FaultHandlerTest : public ::testing::Test {
 protected:
  FaultHandlerTest()
      : frames_(1 * kGiB), cxl_(1 * kGiB), rdma_(1 * kGiB), handler_(&frames_, &backends_) {
    backends_.Register(&cxl_);
    backends_.Register(&rdma_);
  }

  // Maps `npages` of `mm` at `addr` to freshly-allocated pool space holding
  // content_base..; returns the pool offset.
  PoolOffset BackRange(MmStruct& mm, MemoryBackend& pool, Vaddr addr, uint64_t npages,
                       PageContent content_base) {
    auto base = pool.AllocatePages(npages);
    EXPECT_TRUE(base.ok());
    EXPECT_TRUE(pool.WriteContent(*base, npages, content_base).ok());
    PteFlags flags;
    flags.valid = pool.byte_addressable();
    flags.write_protected = true;
    flags.pool = pool.kind();
    mm.page_table().MapRange(AddrToVpn(addr), npages, flags, *base, content_base);
    return *base;
  }

  FrameAllocator frames_;
  CxlPool cxl_;
  RdmaPool rdma_;
  BackendRegistry backends_;
  FaultHandler handler_;
};

constexpr Vaddr kBase = 0x7f0000000000;

TEST_F(FaultHandlerTest, SegfaultOnUnmappedAddress) {
  MmStruct mm;
  auto outcome = handler_.Access(mm, kBase, false);
  EXPECT_EQ(outcome.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(FaultHandlerTest, SegfaultOnWriteToReadOnlyVma) {
  MmStruct mm;
  ASSERT_TRUE(mm.AddVma(MakeAnonVma(kBase, 4 * kPageSize, Protection::ReadOnly(), "ro")).ok());
  EXPECT_EQ(handler_.Access(mm, kBase, true).status().code(), StatusCode::kPermissionDenied);
}

TEST_F(FaultHandlerTest, ZeroFillMinorFaultThenHit) {
  MmStruct mm;
  ASSERT_TRUE(mm.AddVma(MakeAnonVma(kBase, 4 * kPageSize, Protection::ReadWrite(), "heap")).ok());
  auto first = handler_.Access(mm, kBase, false);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->kind, AccessKind::kMinorFault);
  EXPECT_EQ(first->content, kZeroPageContent);
  // Second access: resident.
  auto second = handler_.Access(mm, kBase, false);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->kind, AccessKind::kDirectLocal);
  EXPECT_EQ(mm.stats().minor_faults, 1u);
  EXPECT_EQ(frames_.used_pages(), 1u);
}

TEST_F(FaultHandlerTest, CxlReadIsDirectNoFault) {
  MmStruct mm;
  ASSERT_TRUE(mm.AddVma(MakeAnonVma(kBase, 8 * kPageSize, Protection::ReadWrite(), "img")).ok());
  BackRange(mm, cxl_, kBase, 8, 1000);
  auto outcome = handler_.Access(mm, kBase + 3 * kPageSize, false);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, AccessKind::kDirectRemote);
  EXPECT_EQ(outcome->content, 1003u);
  EXPECT_EQ(outcome->latency, cost::kCxlLoadLatency);
  EXPECT_EQ(mm.stats().major_faults, 0u);
  EXPECT_EQ(mm.stats().cow_faults, 0u);
  EXPECT_EQ(frames_.used_pages(), 0u);  // no local memory consumed
}

TEST_F(FaultHandlerTest, CxlWriteTriggersCow) {
  MmStruct mm;
  ASSERT_TRUE(mm.AddVma(MakeAnonVma(kBase, 8 * kPageSize, Protection::ReadWrite(), "img")).ok());
  BackRange(mm, cxl_, kBase, 8, 1000);
  auto outcome = handler_.Access(mm, kBase + kPageSize, true, 0xBEEF);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, AccessKind::kCowFault);
  EXPECT_EQ(mm.stats().cow_faults, 1u);
  EXPECT_EQ(frames_.used_pages(), 1u);
  // The written page now reads the new content locally.
  auto read = handler_.Access(mm, kBase + kPageSize, false);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->kind, AccessKind::kDirectLocal);
  EXPECT_EQ(read->content, 0xBEEFu);
  // Neighbours still read the shared CXL image.
  EXPECT_EQ(handler_.Access(mm, kBase, false)->content, 1000u);
  EXPECT_EQ(handler_.Access(mm, kBase + 2 * kPageSize, false)->content, 1002u);
  // The pool copy is untouched.
  EXPECT_EQ(*cxl_.ReadContent(1), 1001u);
}

TEST_F(FaultHandlerTest, CowPreservesIsolationBetweenTwoAttachedMms) {
  MmStruct mm_a;
  MmStruct mm_b;
  for (MmStruct* mm : {&mm_a, &mm_b}) {
    ASSERT_TRUE(
        mm->AddVma(MakeAnonVma(kBase, 4 * kPageSize, Protection::ReadWrite(), "img")).ok());
  }
  // Both map the SAME pool block (that is the sharing mechanism).
  auto base = cxl_.AllocatePages(4);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(cxl_.WriteContent(*base, 4, 500).ok());
  PteFlags flags;
  flags.valid = true;
  flags.write_protected = true;
  flags.pool = PoolKind::kCxl;
  mm_a.page_table().MapRange(AddrToVpn(kBase), 4, flags, *base, 500);
  mm_b.page_table().MapRange(AddrToVpn(kBase), 4, flags, *base, 500);

  ASSERT_TRUE(handler_.Access(mm_a, kBase, true, 0xAAAA).ok());
  // A sees its write; B still sees the shared image.
  EXPECT_EQ(handler_.Access(mm_a, kBase, false)->content, 0xAAAAu);
  EXPECT_EQ(handler_.Access(mm_b, kBase, false)->content, 500u);
}

TEST_F(FaultHandlerTest, RdmaTouchIsMajorFault) {
  MmStruct mm;
  ASSERT_TRUE(mm.AddVma(MakeAnonVma(kBase, 8 * kPageSize, Protection::ReadWrite(), "img")).ok());
  BackRange(mm, rdma_, kBase, 8, 2000);
  auto outcome = handler_.Access(mm, kBase + 5 * kPageSize, false);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, AccessKind::kMajorFault);
  EXPECT_EQ(outcome->content, 2005u);
  EXPECT_GE(outcome->latency, cost::kMajorFaultEntry);
  EXPECT_EQ(mm.stats().major_faults, 1u);
  EXPECT_EQ(frames_.used_pages(), 1u);
  // Second touch is resident local.
  auto again = handler_.Access(mm, kBase + 5 * kPageSize, false);
  EXPECT_EQ(again->kind, AccessKind::kDirectLocal);
  EXPECT_EQ(mm.stats().major_faults, 1u);
}

TEST_F(FaultHandlerTest, BulkReadOnCxlCausesNoFaultsAndNoLocalMemory) {
  MmStruct mm;
  const uint64_t npages = BytesToPages(64 * kMiB);
  ASSERT_TRUE(
      mm.AddVma(MakeAnonVma(kBase, npages * kPageSize, Protection::ReadWrite(), "img")).ok());
  BackRange(mm, cxl_, kBase, npages, 9000);
  auto stats = handler_.AccessRange(mm, kBase, npages, false);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->direct_remote, npages);
  EXPECT_EQ(stats->major_faults, 0u);
  EXPECT_EQ(stats->cow_faults, 0u);
  EXPECT_EQ(stats->new_local_pages, 0u);
  EXPECT_EQ(frames_.used_pages(), 0u);
}

TEST_F(FaultHandlerTest, BulkWriteOnCxlCowsEveryPage) {
  MmStruct mm;
  const uint64_t npages = 64;
  ASSERT_TRUE(
      mm.AddVma(MakeAnonVma(kBase, npages * kPageSize, Protection::ReadWrite(), "img")).ok());
  BackRange(mm, cxl_, kBase, npages, 9000);
  auto stats = handler_.AccessRange(mm, kBase, npages, true);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cow_faults, npages);
  EXPECT_EQ(stats->new_local_pages, npages);
  EXPECT_EQ(frames_.used_pages(), npages);
  EXPECT_GE(stats->latency, cost::kCowFault * static_cast<double>(npages));
}

TEST_F(FaultHandlerTest, BulkRdmaFetchAccountsBytesAndCpu) {
  MmStruct mm;
  const uint64_t npages = 128;
  ASSERT_TRUE(
      mm.AddVma(MakeAnonVma(kBase, npages * kPageSize, Protection::ReadWrite(), "img")).ok());
  BackRange(mm, rdma_, kBase, npages, 100);
  auto stats = handler_.AccessRange(mm, kBase, npages, false);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->major_faults, npages);
  EXPECT_EQ(stats->bytes_fetched, npages * kPageSize);
  EXPECT_EQ(stats->fetch_cpu, cost::kRdmaPerFetchCpu * static_cast<double>(npages));
  // Once resident, a second pass costs nothing remote.
  auto second = handler_.AccessRange(mm, kBase, npages, false);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->major_faults, 0u);
  EXPECT_EQ(second->direct_local, npages);
}

TEST_F(FaultHandlerTest, BulkRangeWithGapZeroFills) {
  MmStruct mm;
  ASSERT_TRUE(mm.AddVma(MakeAnonVma(kBase, 32 * kPageSize, Protection::ReadWrite(), "mix")).ok());
  BackRange(mm, cxl_, kBase + 8 * kPageSize, 8, 300);  // pages 8..15 on CXL
  auto stats = handler_.AccessRange(mm, kBase, 32, false);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->minor_faults, 24u);  // the two gaps
  EXPECT_EQ(stats->direct_remote, 8u);
  EXPECT_EQ(mm.page_table().mapped_pages(), 32u);
}

TEST_F(FaultHandlerTest, RangeSpanningTwoVmasRejected) {
  MmStruct mm;
  ASSERT_TRUE(mm.AddVma(MakeAnonVma(kBase, 4 * kPageSize, Protection::ReadWrite(), "a")).ok());
  ASSERT_TRUE(
      mm.AddVma(MakeAnonVma(kBase + 4 * kPageSize, 4 * kPageSize, Protection::ReadWrite(), "b"))
          .ok());
  EXPECT_EQ(handler_.AccessRange(mm, kBase, 8, false).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FaultHandlerTest, HeapGrowthAfterAttachStaysLocal) {
  // Fig 9(b): growth past the template-backed heap must allocate local
  // memory, not run into adjacent CXL ranges.
  MmStruct mm;
  ASSERT_TRUE(mm.AddVma(MakeAnonVma(kBase, 8 * kPageSize, Protection::ReadWrite(), "[heap]")).ok());
  BackRange(mm, cxl_, kBase, 8, 100);
  auto grown = mm.GrowVma(kBase, 4 * kPageSize);
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(*grown, kBase + 8 * kPageSize);
  auto outcome = handler_.Access(mm, *grown, true, 0x1234);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, AccessKind::kMinorFault);
  auto pte = mm.page_table().Lookup(AddrToVpn(*grown));
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(pte->flags.pool, PoolKind::kLocalDram);
}

TEST_F(FaultHandlerTest, WriteReadRoundTrip) {
  MmStruct mm;
  ASSERT_TRUE(mm.AddVma(MakeAnonVma(kBase, 4 * kPageSize, Protection::ReadWrite(), "rw")).ok());
  ASSERT_TRUE(handler_.WritePage(mm, kBase + 2 * kPageSize, 0xCAFE).ok());
  auto content = handler_.ReadPage(mm, kBase + 2 * kPageSize);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, 0xCAFEu);
}

TEST_F(FaultHandlerTest, OutOfLocalMemoryReported) {
  FrameAllocator tiny(2 * kPageSize);
  FaultHandler handler(&tiny, &backends_);
  MmStruct mm;
  ASSERT_TRUE(mm.AddVma(MakeAnonVma(kBase, 8 * kPageSize, Protection::ReadWrite(), "big")).ok());
  ASSERT_TRUE(handler.Access(mm, kBase, true, 1).ok());
  ASSERT_TRUE(handler.Access(mm, kBase + kPageSize, true, 2).ok());
  EXPECT_EQ(handler.Access(mm, kBase + 2 * kPageSize, true, 3).status().code(),
            StatusCode::kOutOfMemory);
}

TEST(MmStructTest, VmaOverlapRejected) {
  MmStruct mm;
  ASSERT_TRUE(mm.AddVma(MakeAnonVma(0x1000, 4 * kPageSize, Protection::ReadWrite(), "a")).ok());
  EXPECT_EQ(mm.AddVma(MakeAnonVma(0x2000, kPageSize, Protection::ReadWrite(), "b")).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(mm.AddVma(MakeAnonVma(0, 2 * kPageSize, Protection::ReadWrite(), "c")).code(),
            StatusCode::kAlreadyExists);
}

TEST(MmStructTest, GrowCollisionRejected) {
  MmStruct mm;
  ASSERT_TRUE(mm.AddVma(MakeAnonVma(0x1000, kPageSize, Protection::ReadWrite(), "heap")).ok());
  ASSERT_TRUE(mm.AddVma(MakeAnonVma(0x3000, kPageSize, Protection::ReadWrite(), "lib")).ok());
  EXPECT_TRUE(mm.GrowVma(0x1000, kPageSize).ok());   // fills the gap exactly
  EXPECT_EQ(mm.GrowVma(0x1000, kPageSize).status().code(), StatusCode::kResourceExhausted);
}

TEST(MmStructTest, RemoveVmaUnmapsPages) {
  MmStruct mm;
  ASSERT_TRUE(mm.AddVma(MakeAnonVma(0x1000, 4 * kPageSize, Protection::ReadWrite(), "a")).ok());
  PteFlags flags;
  flags.valid = true;
  mm.page_table().MapRange(AddrToVpn(0x1000), 4, flags, 0, 0);
  ASSERT_TRUE(mm.RemoveVma(0x1000).ok());
  EXPECT_EQ(mm.page_table().mapped_pages(), 0u);
  EXPECT_EQ(mm.FindVma(0x1000), nullptr);
}

}  // namespace
}  // namespace trenv
