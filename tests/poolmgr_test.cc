// Tests for the cross-node memory-pool control plane (src/poolmgr/):
// consistent-hash shard placement, NIC fetch batching, lease lifecycle,
// pool-node crash recovery, and locality-aware cluster dispatch.
#include <gtest/gtest.h>

#include <set>

#include "src/mempool/rdma_pool.h"
#include "src/platform/cluster.h"
#include "src/poolmgr/fetch_queue.h"
#include "src/poolmgr/hash_ring.h"
#include "src/poolmgr/pool_manager.h"

namespace trenv {
namespace {

// ---------------------------------------------------------------- HashRing

TEST(HashRingTest, PlacementIsDeterministic) {
  HashRing a;
  HashRing b;
  for (uint32_t n = 0; n < 6; ++n) {
    a.AddNode(n);
    b.AddNode(n);
  }
  for (uint64_t key = 1; key < 200; ++key) {
    EXPECT_EQ(a.OwnersFor(key, 3), b.OwnersFor(key, 3)) << "key " << key;
  }
}

TEST(HashRingTest, OwnersAreDistinctAndCapped) {
  HashRing ring;
  ring.AddNode(0);
  ring.AddNode(1);
  ring.AddNode(2);
  for (uint64_t key = 1; key < 100; ++key) {
    const auto owners = ring.OwnersFor(key, 2);
    ASSERT_EQ(owners.size(), 2u);
    EXPECT_NE(owners[0], owners[1]);
    // Asking for more replicas than nodes returns every node once.
    const auto all = ring.OwnersFor(key, 8);
    EXPECT_EQ(std::set<uint32_t>(all.begin(), all.end()).size(), 3u);
  }
}

TEST(HashRingTest, RemovalRemapsOnlyAffectedKeys) {
  HashRing ring;
  for (uint32_t n = 0; n < 8; ++n) {
    ring.AddNode(n);
  }
  std::vector<uint32_t> before;
  std::vector<uint32_t> after;
  uint64_t moved = 0;
  constexpr uint64_t kKeys = 500;
  for (uint64_t key = 1; key <= kKeys; ++key) {
    ring.OwnersFor(key, 1, &before);
    HashRing smaller = ring;
    smaller.RemoveNode(3);
    smaller.OwnersFor(key, 1, &after);
    if (before[0] == 3) {
      EXPECT_NE(after[0], 3u);  // orphaned keys move somewhere live
    } else {
      EXPECT_EQ(before, after) << "key " << key << " moved without cause";
    }
    moved += before[0] == 3 ? 1 : 0;
  }
  // ~1/8 of keys lived on the removed node; consistent hashing must not
  // reshuffle the rest (allow generous slack on the proportion itself).
  EXPECT_GT(moved, kKeys / 20);
  EXPECT_LT(moved, kKeys / 3);
}

TEST(HashRingTest, BalancesLoadAcrossNodes) {
  HashRing ring;
  for (uint32_t n = 0; n < 4; ++n) {
    ring.AddNode(n);
  }
  std::vector<uint64_t> hits(4, 0);
  constexpr uint64_t kKeys = 4000;
  std::vector<uint32_t> owners;
  for (uint64_t key = 1; key <= kKeys; ++key) {
    ring.OwnersFor(key * 0x9E3779B97F4A7C15ULL, 1, &owners);
    hits[owners[0]] += 1;
  }
  for (uint32_t n = 0; n < 4; ++n) {
    EXPECT_GT(hits[n], kKeys / 8) << "node " << n << " starved";
    EXPECT_LT(hits[n], kKeys / 2) << "node " << n << " overloaded";
  }
}

// ------------------------------------------------------------ NicFetchQueue

TEST(FetchQueueTest, CoalescesSameSourceRequests) {
  RdmaPool fabric(kGiB);
  NicFetchQueue nic;
  const auto outcome = nic.Issue(
      SimTime::Zero(), {{/*source=*/1, 64}, {/*source=*/1, 32}, {/*source=*/1, 16}}, &fabric);
  EXPECT_EQ(outcome.ops, 1u);        // one transfer after coalescing
  EXPECT_EQ(outcome.coalesced, 2u);  // two requests merged into it
  EXPECT_EQ(outcome.pages, 112u);
  EXPECT_EQ(outcome.sources, 1u);
  EXPECT_EQ(outcome.queue_delay, SimDuration::Zero());
}

TEST(FetchQueueTest, IncastPenalizesFanIn) {
  // The same pages pulled from 4 sources must cost more than from 1: the
  // incast multiplier and the fabric's per-stream load factor both bite.
  RdmaPool fabric_wide(kGiB);
  NicFetchQueue wide(/*incast_penalty=*/0.25);
  const auto fan = wide.Issue(SimTime::Zero(), {{0, 32}, {1, 32}, {2, 32}, {3, 32}},
                              &fabric_wide);
  RdmaPool fabric_one(kGiB);
  NicFetchQueue one(/*incast_penalty=*/0.25);
  const auto single = one.Issue(SimTime::Zero(), {{0, 128}}, &fabric_one);
  EXPECT_EQ(fan.pages, single.pages);
  EXPECT_EQ(fan.sources, 4u);
  EXPECT_GT(fan.transfer, single.transfer);
}

TEST(FetchQueueTest, BusyNicQueuesTheNextBatch) {
  RdmaPool fabric(kGiB);
  NicFetchQueue nic;
  const auto first = nic.Issue(SimTime::Zero(), {{0, 256}}, &fabric);
  EXPECT_GT(first.transfer, SimDuration::Zero());
  // Issued while the NIC is still draining the first batch: the queue delay
  // is exactly the residual busy time.
  const SimTime mid = SimTime::Zero() + SimDuration(first.transfer.nanos() / 2);
  const auto second = nic.Issue(mid, {{0, 8}}, &fabric);
  EXPECT_EQ(second.queue_delay, nic.busy_until() - mid - second.transfer);
  EXPECT_GT(second.queue_delay, SimDuration::Zero());
  // Streams closed after each batch: no leak into the fabric's load factor.
  EXPECT_EQ(fabric.active_streams(), 0u);
}

TEST(FetchQueueTest, EmptyBatchIsANoOp) {
  RdmaPool fabric(kGiB);
  NicFetchQueue nic;
  const SimTime before = nic.busy_until();
  const auto outcome = nic.Issue(SimTime::Zero() + SimDuration::Seconds(5), {}, &fabric);
  EXPECT_EQ(outcome.pages, 0u);
  EXPECT_EQ(outcome.ops, 0u);
  EXPECT_EQ(outcome.runs, 0u);
  EXPECT_EQ(outcome.sources, 0u);
  EXPECT_EQ(outcome.Total(), SimDuration::Zero());
  // The NIC window is untouched: an empty batch must not reserve the NIC.
  EXPECT_EQ(nic.busy_until(), before);
  EXPECT_EQ(nic.total_ops(), 0u);
  EXPECT_EQ(fabric.active_streams(), 0u);
}

TEST(FetchQueueTest, SingleSourceCoalescesBulkAndDemandRequests) {
  // Bulk scatter-gather descriptors (nruns >= 1) and legacy demand requests
  // (nruns == 0) from one source coalesce into ONE bulk transfer; demand
  // requests folded into the descriptor count as one run each.
  RdmaPool fabric(kGiB);
  NicFetchQueue nic;
  const auto outcome = nic.Issue(SimTime::Zero(),
                                 {{/*source=*/2, 64, /*nruns=*/4},
                                  {/*source=*/2, 32, /*nruns=*/0},
                                  {/*source=*/2, 16, /*nruns=*/2}},
                                 &fabric);
  EXPECT_EQ(outcome.ops, 1u);
  EXPECT_EQ(outcome.coalesced, 2u);
  EXPECT_EQ(outcome.pages, 112u);
  EXPECT_EQ(outcome.runs, 7u);  // 4 + 1 (demand) + 2
  EXPECT_EQ(outcome.sources, 1u);
}

TEST(FetchQueueTest, IncastPenaltyStartsAtTheSecondSource) {
  // Boundary: a single-source batch pays NO incast penalty whatever the
  // configured rate; the multiplier bites from the second source on.
  RdmaPool fabric_a(kGiB);
  NicFetchQueue cheap(/*incast_penalty=*/0.0);
  RdmaPool fabric_b(kGiB);
  NicFetchQueue dear(/*incast_penalty=*/10.0);
  const auto cheap_single = cheap.Issue(SimTime::Zero(), {{0, 64, 1}}, &fabric_a);
  const auto dear_single = dear.Issue(SimTime::Zero(), {{0, 64, 1}}, &fabric_b);
  EXPECT_EQ(cheap_single.transfer, dear_single.transfer);

  RdmaPool fabric_c(kGiB);
  NicFetchQueue cheap2(/*incast_penalty=*/0.0);
  RdmaPool fabric_d(kGiB);
  NicFetchQueue dear2(/*incast_penalty=*/10.0);
  const auto cheap_fan = cheap2.Issue(SimTime::Zero(), {{0, 32, 1}, {1, 32, 1}}, &fabric_c);
  const auto dear_fan = dear2.Issue(SimTime::Zero(), {{0, 32, 1}, {1, 32, 1}}, &fabric_d);
  EXPECT_EQ(cheap_fan.sources, 2u);
  EXPECT_EQ(dear_fan.sources, 2u);
  // Same fabric state, same batch — the only difference is the penalty rate,
  // and with two sources it multiplies the transfer by (1 + 10.0 * 1).
  EXPECT_EQ(dear_fan.transfer, cheap_fan.transfer * 11.0);
}

TEST(FetchQueueTest, BusyWindowIsWorkConservingAcrossInterleavedBulkFetches) {
  // Three bulk batches: the second lands mid-drain (pays residual only), the
  // third lands exactly at busy_until (pays nothing). No idle gap, no
  // double-charge: the final window is the sum of all three transfers.
  RdmaPool fabric(kGiB);
  NicFetchQueue nic;
  const auto first = nic.Issue(SimTime::Zero(), {{0, 512, 8}}, &fabric);
  EXPECT_EQ(first.queue_delay, SimDuration::Zero());

  const SimTime mid = SimTime::Zero() + SimDuration(first.transfer.nanos() / 3);
  const auto second = nic.Issue(mid, {{1, 256, 4}}, &fabric);
  EXPECT_EQ(second.queue_delay, first.transfer - (mid - SimTime::Zero()));

  const SimTime at_drain = nic.busy_until();
  const auto third = nic.Issue(at_drain, {{0, 64, 2}}, &fabric);
  EXPECT_EQ(third.queue_delay, SimDuration::Zero());
  EXPECT_EQ(nic.busy_until(),
            SimTime::Zero() + first.transfer + second.transfer + third.transfer);
  EXPECT_EQ(nic.total_pages(), 512u + 256u + 64u);
  EXPECT_EQ(nic.total_ops(), 3u);
}

// -------------------------------------------------------------- PoolManager

ConsolidatedImage TwoChunkImage(uint64_t fp_a, uint64_t fp_b) {
  ConsolidatedImage image;
  PlacedRegion placed;
  placed.chunks.push_back(PlacedChunk{PoolKind::kCxl, 0, 512, fp_a});
  placed.chunks.push_back(PlacedChunk{PoolKind::kCxl, 512, 512, fp_b});
  image.processes.push_back({placed});
  image.total_pages = 1024;
  return image;
}

struct PoolManagerFixture {
  explicit PoolManagerFixture(PoolManagerConfig config, uint32_t workers = 2)
      : fabric(kGiB), mgr(config, workers, &fabric, nullptr) {}
  RdmaPool fabric;
  PoolManager mgr;
};

PoolManagerConfig SmallPoolConfig(uint32_t replication) {
  PoolManagerConfig config;
  config.enabled = true;
  config.pool_nodes = 4;
  config.replication = replication;
  config.lease_ttl = SimDuration::Seconds(10);
  return config;
}

TEST(PoolManagerTest, SharedChunksShareShards) {
  PoolManagerFixture fx(SmallPoolConfig(2));
  fx.mgr.RegisterTemplate(0, TwoChunkImage(0xAA, 0xBB));
  fx.mgr.RegisterTemplate(1, TwoChunkImage(0xAA, 0xCC));  // 0xAA shared
  EXPECT_EQ(fx.mgr.shard_count(), 3u);
  // Replication 2: every shard's pages live on exactly two pool nodes.
  uint64_t total = 0;
  for (const uint64_t pages : fx.mgr.ShardPagesPerNode()) {
    total += pages;
  }
  EXPECT_EQ(total, 3u * 512u * 2u);
}

TEST(PoolManagerTest, LeaseHitSkipsTheFetch) {
  PoolManagerFixture fx(SmallPoolConfig(2));
  fx.mgr.RegisterTemplate(0, TwoChunkImage(0xAA, 0xBB));
  const auto miss = fx.mgr.Attach(0, 0, SimTime::Zero());
  EXPECT_FALSE(miss.lease_hit);
  EXPECT_EQ(miss.fetched_pages, 1024u);
  const auto hit = fx.mgr.Attach(0, 0, SimTime::Zero() + SimDuration::Seconds(1));
  EXPECT_TRUE(hit.lease_hit);
  EXPECT_EQ(hit.fetched_pages, 0u);
  EXPECT_LT(hit.latency, miss.latency);
  EXPECT_EQ(fx.mgr.LeaseRefs(0, 0), 2u);  // two grant windows outstanding
  // A different worker has no lease: it pays its own fetch.
  const auto other = fx.mgr.Attach(1, 0, SimTime::Zero() + SimDuration::Seconds(1));
  EXPECT_FALSE(other.lease_hit);
}

TEST(PoolManagerTest, LeasesExpirePerGrantWindow) {
  PoolManagerFixture fx(SmallPoolConfig(2));
  fx.mgr.RegisterTemplate(0, TwoChunkImage(0xAA, 0xBB));
  (void)fx.mgr.Attach(0, 0, SimTime::Zero());
  (void)fx.mgr.Attach(0, 0, SimTime::Zero() + SimDuration::Seconds(5));
  ASSERT_EQ(fx.mgr.LeaseRefs(0, 0), 2u);
  // First grant lapses at t=10s, second at t=15s.
  fx.mgr.clock().RunUntil(SimTime::Zero() + SimDuration::Seconds(12));
  EXPECT_EQ(fx.mgr.LeaseRefs(0, 0), 1u);
  fx.mgr.clock().RunUntil(SimTime::Zero() + SimDuration::Seconds(16));
  EXPECT_EQ(fx.mgr.LeaseRefs(0, 0), 0u);
  EXPECT_EQ(fx.mgr.leases_expired(), 1u);  // counted when refs hit zero
}

TEST(PoolManagerTest, ReplicatedCrashPromotesWithoutRevoking) {
  PoolManagerFixture fx(SmallPoolConfig(2));
  fx.mgr.RegisterTemplate(0, TwoChunkImage(0xAA, 0xBB));
  (void)fx.mgr.Attach(0, 0, SimTime::Zero());
  // Crash the pool node serving the most primary pages: with replication 2 a
  // surviving replica is promoted and no lease is revoked.
  const auto primaries = fx.mgr.PrimaryPagesPerNode();
  uint32_t victim = 0;
  for (uint32_t n = 1; n < primaries.size(); ++n) {
    if (primaries[n] > primaries[victim]) {
      victim = n;
    }
  }
  ASSERT_GT(primaries[victim], 0u);
  fx.mgr.OnPoolNodeCrash(victim, SimTime::Zero() + SimDuration::Seconds(1));
  EXPECT_EQ(fx.mgr.leases_revoked(), 0u);
  EXPECT_GT(fx.mgr.replica_promotions(), 0u);
  EXPECT_EQ(fx.mgr.LeaseRefs(0, 0), 1u);
  // The next miss still finds a live source for every shard.
  const auto attach = fx.mgr.Attach(1, 0, SimTime::Zero() + SimDuration::Seconds(2));
  EXPECT_EQ(attach.fetched_pages, 1024u);
}

TEST(PoolManagerTest, UnreplicatedCrashRevokesAndReseeds) {
  PoolManagerFixture fx(SmallPoolConfig(1));
  fx.mgr.RegisterTemplate(0, TwoChunkImage(0xAA, 0xBB));
  (void)fx.mgr.Attach(0, 0, SimTime::Zero());
  // Kill every pool node holding a shard of the template.
  for (uint32_t n = 0; n < 4; ++n) {
    fx.mgr.OnPoolNodeCrash(n, SimTime::Zero() + SimDuration::Seconds(1));
    if (fx.mgr.leases_revoked() > 0) {
      break;
    }
  }
  EXPECT_GT(fx.mgr.leases_revoked(), 0u);
  EXPECT_EQ(fx.mgr.LeaseRefs(0, 0), 0u);
  // Restart one node: the reseed path repopulates from the dedup store and
  // the next attach succeeds as a plain miss.
  fx.mgr.OnPoolNodeRestart(0, SimTime::Zero() + SimDuration::Seconds(2));
  const auto attach = fx.mgr.Attach(0, 0, SimTime::Zero() + SimDuration::Seconds(3));
  EXPECT_FALSE(attach.lease_hit);
  EXPECT_EQ(attach.fetched_pages, 1024u);
  EXPECT_GT(fx.mgr.reseeded_shards(), 0u);
}

TEST(PoolManagerTest, RebalanceRestoresReplication) {
  auto config = SmallPoolConfig(2);
  PoolManagerFixture fx(config);
  fx.mgr.RegisterTemplate(0, TwoChunkImage(0xAA, 0xBB));
  // Crash a node that actually holds shard pages, so the survivors are left
  // under-replicated until the rebalance fires.
  const auto held = fx.mgr.ShardPagesPerNode();
  uint32_t victim = 0;
  for (uint32_t n = 1; n < held.size(); ++n) {
    if (held[n] > held[victim]) {
      victim = n;
    }
  }
  ASSERT_GT(held[victim], 0u);
  fx.mgr.OnPoolNodeCrash(victim, SimTime::Zero() + SimDuration::Seconds(1));
  // The delayed rebalance fires rebalance_delay after the crash and restores
  // every shard to full replication on the surviving membership.
  fx.mgr.clock().RunUntil(SimTime::Zero() + SimDuration::Seconds(1) + config.rebalance_delay +
                          SimDuration::Millis(1));
  EXPECT_GT(fx.mgr.rebalance_moves(), 0u);
  uint64_t total = 0;
  const auto per_node = fx.mgr.ShardPagesPerNode();
  for (const uint64_t pages : per_node) {
    total += pages;
  }
  EXPECT_EQ(per_node[victim], 0u);  // dead node holds nothing
  EXPECT_EQ(total, 2u * 512u * 2u);
}

TEST(HashRingTest, RapidAddRemoveReaddKeepsPlacementsStable) {
  HashRing ring;
  for (uint32_t n = 0; n < 8; ++n) {
    ring.AddNode(n);
  }
  const size_t vnodes = ring.vnode_count();
  constexpr uint64_t kKeys = 300;
  std::vector<std::vector<uint32_t>> before;
  before.reserve(kKeys);
  for (uint64_t key = 1; key <= kKeys; ++key) {
    before.push_back(ring.OwnersFor(key, 2));
  }
  // Rapid churn of the same node id: vnode positions are a pure function of
  // (node, replica), so a re-added node lands exactly where it was and no
  // placement moves. Double-adds and removals of strangers are no-ops.
  for (int cycle = 0; cycle < 5; ++cycle) {
    ring.RemoveNode(3);
    EXPECT_FALSE(ring.Contains(3));
    ring.RemoveNode(3);  // already gone: no-op
    ring.AddNode(3);
    EXPECT_TRUE(ring.Contains(3));
    ring.AddNode(3);  // already present: no duplicate vnodes
    ring.RemoveNode(99);
  }
  EXPECT_EQ(ring.vnode_count(), vnodes);
  EXPECT_EQ(ring.node_count(), 8u);
  for (uint64_t key = 1; key <= kKeys; ++key) {
    EXPECT_EQ(ring.OwnersFor(key, 2), before[key - 1]) << "key " << key;
  }
}

TEST(PoolManagerTest, RebalanceIsIdempotentAcrossRejoinEpochs) {
  PoolManagerFixture fx(SmallPoolConfig(2));
  fx.mgr.RegisterTemplate(0, TwoChunkImage(0xAA, 0xBB));
  fx.mgr.RegisterTemplate(1, TwoChunkImage(0xCC, 0xDD));
  const auto held = fx.mgr.ShardPagesPerNode();
  uint32_t victim = 0;
  for (uint32_t n = 1; n < held.size(); ++n) {
    if (held[n] > held[victim]) {
      victim = n;
    }
  }
  ASSERT_GT(held[victim], 0u);
  const auto snapshot = [&] {
    std::vector<std::vector<uint32_t>> placements;
    for (uint32_t s = 0; s < fx.mgr.shard_count(); ++s) {
      placements.push_back(fx.mgr.ShardReplicas(s));
    }
    return std::make_tuple(placements, fx.mgr.ShardPagesPerNode(),
                           fx.mgr.PrimaryPagesPerNode(), fx.mgr.rebalance_moves(),
                           fx.mgr.rebalanced_pages(), fx.mgr.reseeded_shards(),
                           fx.mgr.replica_promotions());
  };
  const auto churn_epoch = [&](SimTime t) {
    fx.mgr.OnPoolNodeCrash(victim, t);
    fx.mgr.RunRebalance(t);
    fx.mgr.OnPoolNodeRestart(victim, t + SimDuration::Seconds(1));
    fx.mgr.RunRebalance(t + SimDuration::Seconds(1));
  };
  churn_epoch(SimTime::Zero() + SimDuration::Seconds(1));
  const auto converged = snapshot();
  // Regression: the sweep used to compare replica lists order-sensitively,
  // so the promoted-primary rotation a rejoin leaves behind made every later
  // sweep re-enter the mutation body. Repeat sweeps must be structural
  // no-ops — placements AND counters untouched.
  fx.mgr.RunRebalance(SimTime::Zero() + SimDuration::Seconds(3));
  EXPECT_EQ(snapshot(), converged);
  fx.mgr.RunRebalance(SimTime::Zero() + SimDuration::Seconds(4));
  EXPECT_EQ(snapshot(), converged);
  // A second crash/rejoin epoch of the same node (the "assumes one crash
  // epoch" bug) converges to the identical placement, and repeat sweeps
  // after it are no-ops again.
  churn_epoch(SimTime::Zero() + SimDuration::Seconds(5));
  const auto second = snapshot();
  EXPECT_EQ(std::get<0>(second), std::get<0>(converged));
  EXPECT_EQ(std::get<1>(second), std::get<1>(converged));
  EXPECT_EQ(std::get<2>(second), std::get<2>(converged));
  fx.mgr.RunRebalance(SimTime::Zero() + SimDuration::Seconds(7));
  EXPECT_EQ(snapshot(), second);
}

TEST(PoolManagerTest, ChurnLeavesNoOrphanedReplicas) {
  PoolManagerFixture fx(SmallPoolConfig(2));
  fx.mgr.RegisterTemplate(0, TwoChunkImage(0xAA, 0xBB));
  fx.mgr.RegisterTemplate(1, TwoChunkImage(0xCC, 0xDD));
  const auto check_replicas = [&](size_t want) {
    for (uint32_t s = 0; s < fx.mgr.shard_count(); ++s) {
      const auto replicas = fx.mgr.ShardReplicas(s);
      EXPECT_EQ(replicas.size(), want) << "shard " << s;
      EXPECT_EQ(std::set<uint32_t>(replicas.begin(), replicas.end()).size(), replicas.size())
          << "shard " << s << " lists a node twice";
      for (const uint32_t node : replicas) {
        EXPECT_TRUE(fx.mgr.pool_node_alive(node))
            << "shard " << s << " orphaned on dead node " << node;
      }
    }
  };
  for (int cycle = 0; cycle < 3; ++cycle) {
    const SimTime t = SimTime::Zero() + SimDuration::Seconds(1 + 2 * cycle);
    fx.mgr.OnPoolNodeCrash(1, t);
    fx.mgr.RunRebalance(t);
    check_replicas(2);  // mid-churn: nothing points at the dead node
    fx.mgr.OnPoolNodeRestart(1, t + SimDuration::Seconds(1));
    fx.mgr.RunRebalance(t + SimDuration::Seconds(1));
    check_replicas(2);
  }
}

TEST(PoolManagerTest, LeaseRenewalRacesShardMigration) {
  PoolManagerFixture fx(SmallPoolConfig(2));
  fx.mgr.RegisterTemplate(0, TwoChunkImage(0xAA, 0xBB));
  const auto miss = fx.mgr.Attach(0, 0, SimTime::Zero());
  ASSERT_EQ(miss.fetched_pages, 1024u);
  // Crash shard 0's primary: promotion redirects the shard to a survivor and
  // kicks off a migration (the delayed rebalance will re-replicate).
  const uint32_t victim = fx.mgr.ShardReplicas(0).front();
  fx.mgr.OnPoolNodeCrash(victim, SimTime::Zero() + SimDuration::Seconds(1));
  EXPECT_GE(fx.mgr.replica_promotions(), 1u);
  EXPECT_EQ(fx.mgr.leases_revoked(), 0u);
  // Renewal lands while the shard is mid-migration (under-replicated): it
  // must stay a metadata-only hit on the surviving lease.
  const auto renew = fx.mgr.Attach(0, 0, SimTime::Zero() + SimDuration::Millis(1500));
  EXPECT_TRUE(renew.lease_hit);
  EXPECT_EQ(renew.fetched_pages, 0u);
  EXPECT_EQ(fx.mgr.LeaseRefs(0, 0), 2u);
  // Migration completes; the lease is still valid and renews again.
  fx.mgr.RunRebalance(SimTime::Zero() + SimDuration::Seconds(2));
  const auto renew2 = fx.mgr.Attach(0, 0, SimTime::Zero() + SimDuration::Millis(2500));
  EXPECT_TRUE(renew2.lease_hit);
  EXPECT_EQ(fx.mgr.LeaseRefs(0, 0), 3u);
  EXPECT_EQ(fx.mgr.leases_revoked(), 0u);
  // A cold worker fetches the full template from the post-migration
  // placement, and every shard's serving primary is a live node.
  const auto cold = fx.mgr.Attach(1, 0, SimTime::Zero() + SimDuration::Seconds(3));
  EXPECT_FALSE(cold.lease_hit);
  EXPECT_EQ(cold.fetched_pages, 1024u);
  for (uint32_t s = 0; s < fx.mgr.shard_count(); ++s) {
    EXPECT_TRUE(fx.mgr.pool_node_alive(fx.mgr.ShardReplicas(s).front()));
  }
}

// ------------------------------------------------------------ Cluster level

ClusterConfig PoolClusterConfig(ClusterConfig::Dispatch dispatch, uint32_t replication) {
  ClusterConfig config;
  config.nodes = 4;
  config.dispatch = dispatch;
  config.poolmgr.enabled = true;
  config.poolmgr.pool_nodes = 4;
  config.poolmgr.replication = replication;
  return config;
}

Schedule SpacedSchedule(int count, SimDuration gap, const std::string& function) {
  Schedule schedule;
  for (int i = 0; i < count; ++i) {
    schedule.push_back({SimTime::Zero() + gap * i, function});
  }
  return schedule;
}

TEST(PoolClusterTest, DisabledByDefault) {
  Cluster cluster(ClusterConfig{});
  EXPECT_EQ(cluster.pool_manager(), nullptr);
}

TEST(PoolClusterTest, TemplateLocalityCutsRemoteFetches) {
  const auto run = [](ClusterConfig::Dispatch dispatch) {
    Cluster cluster(PoolClusterConfig(dispatch, 2));
    EXPECT_TRUE(cluster.DeployTable4Functions().ok());
    EXPECT_TRUE(cluster.Run(SpacedSchedule(12, SimDuration::Millis(400), "JS")).ok());
    EXPECT_EQ(cluster.TotalInvocations(), 12u);
    return std::make_pair(cluster.pool_manager()->remote_fetch_pages(),
                          cluster.pool_manager()->lease_hits());
  };
  const auto [locality_pages, locality_hits] = run(ClusterConfig::Dispatch::kTemplateLocality);
  const auto [spread_pages, spread_hits] = run(ClusterConfig::Dispatch::kLeastLoaded);
  EXPECT_LT(locality_pages, spread_pages);
  EXPECT_GT(locality_hits, spread_hits);
}

TEST(PoolClusterTest, PoolCrashWithReplicationLosesNothing) {
  ClusterConfig config = PoolClusterConfig(ClusterConfig::Dispatch::kTemplateLocality, 2);
  config.faults.Add(PoolCrashWindow(SimTime::Zero() + SimDuration::Seconds(1),
                                    SimTime::Zero() + SimDuration::Seconds(2),
                                    /*probability=*/1.0, /*pool_node=*/1,
                                    /*restart_after=*/SimDuration::Zero()));
  Cluster cluster(config);
  ASSERT_TRUE(cluster.DeployTable4Functions().ok());
  ASSERT_TRUE(cluster.Run(SpacedSchedule(16, SimDuration::Millis(250), "JS")).ok());
  // Zero accepted-invocation loss: every accepted invocation completed even
  // though a pool node died mid-run.
  EXPECT_EQ(cluster.accepted_invocations(), 16u);
  EXPECT_EQ(cluster.TotalInvocations(), 16u);
  EXPECT_FALSE(cluster.pool_manager()->pool_node_alive(1));
  EXPECT_EQ(cluster.pool_manager()->leases_revoked(), 0u);
}

TEST(PoolClusterTest, RunsAreDeterministic) {
  const auto fingerprint = [] {
    ClusterConfig config = PoolClusterConfig(ClusterConfig::Dispatch::kTemplateLocality, 2);
    config.faults.Add(PoolCrashWindow(SimTime::Zero() + SimDuration::Seconds(1),
                                      SimTime::Zero() + SimDuration::Seconds(2), 1.0, 1,
                                      SimDuration::Seconds(2)));
    Cluster cluster(config);
    EXPECT_TRUE(cluster.DeployTable4Functions().ok());
    EXPECT_TRUE(cluster.Run(SpacedSchedule(10, SimDuration::Millis(300), "CR")).ok());
    const PoolManager& mgr = *cluster.pool_manager();
    return std::make_tuple(cluster.AggregateMetrics().e2e_ms.Mean(), mgr.remote_fetch_pages(),
                           mgr.lease_hits(), mgr.rebalance_moves(),
                           mgr.attach_ms().Percentile(99));
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

}  // namespace
}  // namespace trenv
