// Tests for agent profiles, trace recording/replay, browser sharing, and the
// cost model (paper sections 2 and 6.2).
#include <gtest/gtest.h>

#include "src/agents/agent_executor.h"
#include "src/agents/browser.h"
#include "src/agents/cost_model.h"

namespace trenv {
namespace {

TEST(AgentProfileTest, TableTwoHasSixAgents) {
  const auto agents = Table2Agents();
  ASSERT_EQ(agents.size(), 6u);
  EXPECT_EQ(agents[0].name, "Blackjack");
  EXPECT_NE(FindAgent("Blog summary"), nullptr);
  EXPECT_EQ(FindAgent("nope"), nullptr);
}

TEST(AgentProfileTest, CpuUtilizationIsLow) {
  // Section 2.4: agents use well under 25% of allocated CPU.
  for (const auto& agent : Table2Agents()) {
    EXPECT_LT(agent.AvgCpuUtilization(), 0.35) << agent.name;
  }
  // Game design specifically ~7%.
  const AgentProfile* game = FindAgent("Game design");
  EXPECT_NEAR(game->AvgCpuUtilization(), 0.07, 0.02);
}

TEST(LlmTraceTest, TotalsMatchTableTwoAndThree) {
  for (const auto& agent : Table2Agents()) {
    const AgentTrace trace = RecordTrace(agent, 42);
    const TraceSummary summary = SummarizeTrace(trace);
    // Tokens match Table 3 exactly.
    EXPECT_EQ(summary.input_tokens, agent.input_tokens) << agent.name;
    EXPECT_EQ(summary.output_tokens, agent.output_tokens) << agent.name;
    // CPU time and E2E latency match Table 2 within rounding.
    EXPECT_NEAR(summary.tool_cpu.seconds(), agent.cpu_time.seconds(),
                0.02 * agent.cpu_time.seconds() + 1e-6)
        << agent.name;
    EXPECT_NEAR(summary.nominal_e2e.seconds(), agent.e2e_latency.seconds(),
                0.05 * agent.e2e_latency.seconds())
        << agent.name;
    EXPECT_EQ(summary.llm_calls, agent.llm_calls);
    EXPECT_EQ(summary.tool_steps, agent.llm_calls + 1u);
  }
}

TEST(LlmTraceTest, DeterministicForFixedSeed) {
  const AgentProfile* agent = FindAgent("Map reduce");
  const AgentTrace a = RecordTrace(*agent, 7);
  const AgentTrace b = RecordTrace(*agent, 7);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  EXPECT_EQ(a.TotalLlmWait(), b.TotalLlmWait());
  EXPECT_EQ(a.TotalToolCpu(), b.TotalToolCpu());
  const AgentTrace c = RecordTrace(*agent, 8);
  EXPECT_NE(a.TotalLlmWait().nanos(), c.TotalLlmWait().nanos());
}

TEST(LlmTraceTest, BrowserStepsOnlyForBrowserAgents) {
  auto uses_browser = [](const AgentTrace& trace) {
    for (const auto& step : trace.steps) {
      if (const auto* tool = std::get_if<ToolStep>(&step)) {
        if (tool->uses_browser) {
          return true;
        }
      }
    }
    return false;
  };
  EXPECT_FALSE(uses_browser(RecordTrace(*FindAgent("Bug fixer"), 1)));
  EXPECT_TRUE(uses_browser(RecordTrace(*FindAgent("Shop assistant"), 1)));
}

TEST(LlmTraceTest, MemoryRampSumsToDynamicMemory) {
  const AgentProfile* agent = FindAgent("Blog summary");
  const AgentTrace trace = RecordTrace(*agent, 42);
  int64_t total = 0;
  for (const auto& step : trace.steps) {
    if (const auto* tool = std::get_if<ToolStep>(&step)) {
      total += tool->memory_delta_bytes;
    }
  }
  EXPECT_NEAR(static_cast<double>(total), static_cast<double>(agent->dynamic_memory_bytes),
              0.02 * static_cast<double>(agent->dynamic_memory_bytes));
}

TEST(CostModelTest, LlmCostFollowsEquationOne) {
  // 1M input at $0.5/M + 1M output at $2/M.
  EXPECT_NEAR(LlmCallCostUsd(1'000'000, 1'000'000), 2.5, 1e-9);
}

TEST(CostModelTest, ServerlessCostFollowsEquationTwo) {
  // 1000 ms at 1 GB: 1000 * 1.67e-8 * 1 = 1.67e-5 USD.
  EXPECT_NEAR(ServerlessCostUsd(SimDuration::Seconds(1), 1'000'000'000ULL), 1.67e-5, 1e-12);
}

TEST(CostModelTest, RelativeCostSubstantialForComplexAgents) {
  // Fig 3: serverless cost reaches up to ~71% of the LLM cost (paper: the
  // Shop-assistant agent), with complex agents paying relatively more than
  // lightweight ones.
  double max_relative = 0;
  for (const auto& agent : Table2Agents()) {
    const double rel = RelativeServerlessCost(agent);
    EXPECT_GT(rel, 0.0) << agent.name;
    EXPECT_LT(rel, 1.0) << agent.name;
    max_relative = std::max(max_relative, rel);
  }
  // The peak relative cost lands at the paper's "up to 71%".
  EXPECT_NEAR(max_relative, 0.71, 0.1);
  // Complex browser agents pay far more than the lightest agent.
  EXPECT_GT(RelativeServerlessCost(*FindAgent("Shop assistant")),
            2.0 * RelativeServerlessCost(*FindAgent("Blackjack")));
}

TEST(BrowserPoolTest, SeatsFillBeforeNewBrowser) {
  SharedBrowserPool pool(/*agents_per_browser=*/3);
  Browser* b1 = pool.Acquire();
  Browser* b2 = pool.Acquire();
  Browser* b3 = pool.Acquire();
  EXPECT_EQ(b1, b2);
  EXPECT_EQ(b2, b3);
  EXPECT_EQ(pool.browser_count(), 1u);
  Browser* b4 = pool.Acquire();
  EXPECT_NE(b4, b1);
  EXPECT_EQ(pool.browser_count(), 2u);
}

TEST(BrowserPoolTest, SharingAmortizesMemory) {
  SharedBrowserPool shared(10);
  for (int i = 0; i < 10; ++i) {
    shared.Acquire();
  }
  SharedBrowserPool dedicated(1);
  for (int i = 0; i < 10; ++i) {
    dedicated.Acquire();
  }
  // One shared browser vs ten dedicated ones.
  EXPECT_EQ(shared.browser_count(), 1u);
  EXPECT_EQ(dedicated.browser_count(), 10u);
  EXPECT_LT(shared.TotalMemoryBytes() * 3, dedicated.TotalMemoryBytes());
}

TEST(BrowserPoolTest, ReleaseReapsEmptyBrowsers) {
  SharedBrowserPool pool(2);
  Browser* a = pool.Acquire();
  Browser* b = pool.Acquire();
  ASSERT_EQ(a, b);
  pool.Release(a);
  EXPECT_EQ(pool.browser_count(), 1u);
  pool.Release(b);
  EXPECT_EQ(pool.browser_count(), 0u);
  pool.Release(nullptr);  // no-op
}

}  // namespace
}  // namespace trenv
