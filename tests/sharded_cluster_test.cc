// Cluster::RunSharded determinism contract: output is byte-identical at any
// --shards setting, and with zero lookahead byte-identical to the sequential
// Run(). "Byte-identical" is checked through a fingerprint that serializes
// every externally observable quantity (per-function histograms at full
// precision, per-node memory, every registry counter), so any divergence in
// event ordering, RNG draws, or placement shows up as a string mismatch.
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/platform/cluster.h"
#include "src/workload/arrival_stream.h"

namespace trenv {
namespace {

void FingerprintHistogram(std::ostringstream& out, const char* label, const Histogram& h) {
  out << ' ' << label << ":n=" << h.count();
  if (!h.empty()) {
    out << ",min=" << h.Min() << ",max=" << h.Max() << ",mean=" << h.Mean()
        << ",sd=" << h.Stddev() << ",p50=" << h.Median() << ",p99=" << h.P99();
  }
}

std::string Fingerprint(const Cluster& cluster) {
  std::ostringstream out;
  out << std::setprecision(17);
  out << "accepted=" << cluster.accepted_invocations() << '\n';
  Cluster& mut = const_cast<Cluster&>(cluster);
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    ServerlessPlatform& node = mut.node(i);
    out << "node " << i << " alive=" << cluster.node_alive(i)
        << " failed=" << node.failed_invocations()
        << " frames=" << node.frames().used_bytes()
        << " frames_peak=" << node.frames().peak_used_bytes()
        << " mem_peak=" << node.metrics().peak_memory_bytes()
        << " fetch_cpu=" << node.metrics().fetch_cpu_seconds() << '\n';
    for (const auto& [fn, m] : node.metrics().per_function()) {
      out << "  fn " << fn << " inv=" << m.invocations << " warm=" << m.warm_starts
          << " cold=" << m.cold_starts << " rep=" << m.repurposed_starts;
      FingerprintHistogram(out, "e2e", m.e2e_ms);
      FingerprintHistogram(out, "startup", m.startup_ms);
      FingerprintHistogram(out, "exec", m.exec_ms);
      out << '\n';
    }
  }
  out << "pool=" << cluster.PoolBytes() << " dram=" << cluster.NodeDramBytes() << '\n';
  for (const auto& [name, counter] : cluster.registry().counters()) {
    out << "ctr " << name << '=' << counter->value() << '\n';
  }
  return out.str();
}

Schedule TestSchedule(uint64_t seed) {
  std::vector<std::string> fns = {"JS", "DH", "IR", "CR", "PR"};
  Rng rng(seed);
  return MakePoissonWorkload(fns, 40.0, SimDuration::Seconds(20), 0.7, rng);
}

ClusterConfig BaseConfig() {
  ClusterConfig config;
  config.nodes = 4;
  // Short TTL keeps restores (the expensive shared-pool path) in the mix.
  config.node_config.keep_alive_ttl = SimDuration::Seconds(2);
  return config;
}

std::string RunLegacy(const ClusterConfig& config, const Schedule& schedule) {
  Cluster cluster(config);
  EXPECT_TRUE(cluster.DeployTable4Functions().ok());
  EXPECT_TRUE(cluster.Run(schedule).ok());
  return Fingerprint(cluster);
}

std::string RunShardedOn(const ClusterConfig& config, const Schedule& schedule,
                         uint32_t shards, SimDuration lookahead,
                         uint32_t* effective = nullptr) {
  Cluster cluster(config);
  EXPECT_TRUE(cluster.DeployTable4Functions().ok());
  ScheduleStream stream(schedule);
  ShardedRunOptions options;
  options.shards = shards;
  options.lookahead = lookahead;
  EXPECT_TRUE(cluster.RunSharded(stream, options).ok());
  if (effective != nullptr) {
    *effective = cluster.sharded_effective_shards();
  }
  return Fingerprint(cluster);
}

TEST(ShardedClusterTest, PerArrivalModeMatchesLegacyRunAtEveryShardCount) {
  const Schedule schedule = TestSchedule(42);
  const ClusterConfig config = BaseConfig();
  const std::string legacy = RunLegacy(config, schedule);
  ASSERT_NE(legacy.find("fn JS"), std::string::npos);
  for (const uint32_t shards : {1u, 2u, 4u}) {
    EXPECT_EQ(legacy, RunShardedOn(config, schedule, shards, SimDuration::Zero()))
        << "shards=" << shards;
  }
}

TEST(ShardedClusterTest, WindowedModeIsShardCountInvariant) {
  const Schedule schedule = TestSchedule(7);
  const ClusterConfig config = BaseConfig();
  const std::string one = RunShardedOn(config, schedule, 1, SimDuration::Millis(20));
  for (const uint32_t shards : {2u, 4u, 8u}) {
    EXPECT_EQ(one, RunShardedOn(config, schedule, shards, SimDuration::Millis(20)))
        << "shards=" << shards;
  }
  // The windowed run still completes the whole trace.
  EXPECT_NE(one.find("accepted=" + std::to_string(schedule.size())), std::string::npos);
}

TEST(ShardedClusterTest, ShardCountClampsToNodeCount) {
  const Schedule schedule = TestSchedule(3);
  uint32_t effective = 0;
  RunShardedOn(BaseConfig(), schedule, 64, SimDuration::Zero(), &effective);
  EXPECT_EQ(effective, 4u);
}

TEST(ShardedClusterTest, LeastLoadedAndTemplateLocalityBothDeterministic) {
  const Schedule schedule = TestSchedule(11);
  for (const auto dispatch : {ClusterConfig::Dispatch::kRoundRobin,
                              ClusterConfig::Dispatch::kTemplateLocality}) {
    ClusterConfig config = BaseConfig();
    config.dispatch = dispatch;
    const std::string legacy = RunLegacy(config, schedule);
    EXPECT_EQ(legacy, RunShardedOn(config, schedule, 4, SimDuration::Zero()));
    const std::string windowed = RunShardedOn(config, schedule, 1, SimDuration::Millis(10));
    EXPECT_EQ(windowed, RunShardedOn(config, schedule, 4, SimDuration::Millis(10)));
  }
}

TEST(ShardedClusterTest, PoolManagerRunsShardedDeterministically) {
  ClusterConfig config = BaseConfig();
  config.poolmgr.enabled = true;
  config.dispatch = ClusterConfig::Dispatch::kTemplateLocality;
  const Schedule schedule = TestSchedule(13);
  const std::string legacy = RunLegacy(config, schedule);
  for (const uint32_t shards : {2u, 4u}) {
    EXPECT_EQ(legacy, RunShardedOn(config, schedule, shards, SimDuration::Zero()))
        << "shards=" << shards;
  }
  EXPECT_EQ(RunShardedOn(config, schedule, 1, SimDuration::Millis(20)),
            RunShardedOn(config, schedule, 4, SimDuration::Millis(20)));
}

TEST(ShardedClusterTest, FaultedRunDegradesToOneShardAndMatchesLegacy) {
  ClusterConfig config = BaseConfig();
  config.faults.Add(NodeCrashWindow(SimTime::Zero() + SimDuration::Seconds(4),
                                    SimTime::Zero() + SimDuration::Seconds(6), 1.0, 1,
                                    SimDuration::Seconds(3)));
  config.faults.Add(PoolPressureWindow(SimTime::Zero() + SimDuration::Seconds(8),
                                       SimTime::Zero() + SimDuration::Seconds(12), 0.5));
  const Schedule schedule = TestSchedule(21);
  const std::string legacy = RunLegacy(config, schedule);
  // The injector binds per-node state, so cross-thread sharding is off: any
  // requested shard count degrades to 1 and the output must still match the
  // sequential run exactly (crash, failover re-dispatch, and pressure events
  // flow through the same mailbox epochs).
  for (const uint32_t shards : {1u, 4u}) {
    uint32_t effective = 0;
    EXPECT_EQ(legacy, RunShardedOn(config, schedule, shards, SimDuration::Zero(), &effective))
        << "shards=" << shards;
    EXPECT_EQ(effective, 1u);
  }
}

TEST(ShardedClusterTest, StreamingTraceMatchesMaterializedSchedule) {
  // Feeding the generator stream straight into RunSharded must equal
  // materializing the same seed's schedule and running it — the 10M-trace
  // memory win cannot change results.
  const ClusterConfig config = BaseConfig();
  std::vector<std::string> fns = {"JS", "DH", "IR", "CR", "PR"};
  Rng seed_rng(42);
  const Schedule materialized =
      MakePoissonWorkload(fns, 40.0, SimDuration::Seconds(20), 0.7, seed_rng);
  const std::string legacy = RunLegacy(config, materialized);

  Cluster cluster(config);
  ASSERT_TRUE(cluster.DeployTable4Functions().ok());
  Rng rng(42);
  PoissonArrivalStream stream(fns, 40.0, SimDuration::Seconds(20), 0.7, &rng);
  ShardedRunOptions options;
  options.shards = 4;
  ASSERT_TRUE(cluster.RunSharded(stream, options).ok());
  EXPECT_EQ(legacy, Fingerprint(cluster));
}

TEST(ShardedClusterTest, CrashRecoveryOrderIsArrivalThenTicket) {
  // Queued invocations sharing an arrival time must come back from Crash()
  // in acceptance-ticket order — the (arrival, ticket) total order that keeps
  // failover re-dispatch deterministic under sharded replay.
  ClusterConfig config;
  config.nodes = 1;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.DeployTable4Functions().ok());
  const SimTime early = SimTime::Zero() + SimDuration::Millis(5);
  const SimTime late = SimTime::Zero() + SimDuration::Millis(10);
  ASSERT_TRUE(cluster.Submit(late, "JS").ok());
  ASSERT_TRUE(cluster.Submit(late, "DH").ok());
  ASSERT_TRUE(cluster.Submit(early, "IR").ok());
  ASSERT_TRUE(cluster.Submit(late, "CR").ok());
  ASSERT_TRUE(cluster.Submit(early, "PR").ok());
  const std::vector<LostInvocation> lost = cluster.node(0).Crash();
  ASSERT_EQ(lost.size(), 5u);
  const std::vector<std::string> want = {"IR", "PR", "JS", "DH", "CR"};
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(lost[i].function, want[i]) << "position " << i;
  }
  for (size_t i = 1; i < lost.size(); ++i) {
    const bool ordered = lost[i - 1].arrival < lost[i].arrival ||
                         (lost[i - 1].arrival == lost[i].arrival &&
                          lost[i - 1].ticket < lost[i].ticket);
    EXPECT_TRUE(ordered) << "position " << i;
  }
}

}  // namespace
}  // namespace trenv
