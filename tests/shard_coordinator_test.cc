// ShardCoordinator: the epoch-barrier engine under Cluster::RunSharded. This
// binary is the TSan target in CI — every assertion here doubles as a data
// race probe over the spin/park handshake and the atomic Counter.
#include "src/sim/shard_coordinator.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/registry.h"

namespace trenv {
namespace {

TEST(ShardCoordinatorTest, RunsEveryShardOncePerEpoch) {
  ShardCoordinator coordinator(4);
  EXPECT_EQ(coordinator.shards(), 4u);
  std::vector<std::atomic<uint64_t>> runs(4);
  for (auto& r : runs) {
    r.store(0);
  }
  constexpr uint64_t kEpochs = 200;
  for (uint64_t e = 0; e < kEpochs; ++e) {
    coordinator.RunEpoch([&](size_t shard) { runs[shard].fetch_add(1); });
  }
  EXPECT_EQ(coordinator.epochs(), kEpochs);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(runs[s].load(), kEpochs) << "shard " << s;
  }
}

TEST(ShardCoordinatorTest, SingleShardRunsInlineOnCallingThread) {
  ShardCoordinator coordinator(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  coordinator.RunEpoch([&](size_t shard) {
    EXPECT_EQ(shard, 0u);
    ran_on = std::this_thread::get_id();
  });
  // One shard means zero worker threads: the epoch body must run inline so a
  // 1-shard RunSharded is bitwise the single-threaded reference execution.
  EXPECT_EQ(ran_on, caller);
  EXPECT_EQ(coordinator.barrier_wait_seconds(), 0.0);
}

TEST(ShardCoordinatorTest, EpochBarrierPublishesPlainWrites) {
  // Shard s writes cell s in epoch e; in epoch e+1 every shard reads ALL
  // cells from epoch e. Plain (non-atomic) accesses on purpose: the epoch
  // barrier itself must provide the happens-before edges, exactly as the
  // sharded cluster relies on when the coordinator reads node metrics and
  // applies mailbox commands between epochs. TSan verifies the ordering.
  constexpr size_t kShards = 4;
  constexpr uint64_t kEpochs = 500;
  ShardCoordinator coordinator(kShards);
  std::vector<uint64_t> cells(kShards, 0);
  for (uint64_t e = 1; e <= kEpochs; ++e) {
    coordinator.RunEpoch([&](size_t shard) {
      for (size_t other = 0; other < kShards; ++other) {
        ASSERT_EQ(cells[other], e - 1) << "shard " << shard << " epoch " << e;
      }
    });
    coordinator.RunEpoch([&](size_t shard) { cells[shard] = e; });
  }
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(cells[s], kEpochs);
  }
}

TEST(ShardCoordinatorTest, AtomicCounterIsExactUnderConcurrentAdds) {
  // Counters on shared devices absorb adds from every shard concurrently.
  // Integer-valued doubles commute exactly under the CAS loop, so the total
  // must be exact, not approximate.
  obs::Registry registry;
  obs::Counter* counter = registry.GetCounter("test.shared_adds");
  constexpr size_t kShards = 8;
  constexpr uint64_t kEpochs = 100;
  constexpr int kAddsPerEpoch = 64;
  ShardCoordinator coordinator(kShards);
  for (uint64_t e = 0; e < kEpochs; ++e) {
    coordinator.RunEpoch([&](size_t) {
      for (int i = 0; i < kAddsPerEpoch; ++i) {
        counter->Add(1.0);
      }
    });
  }
  EXPECT_EQ(counter->value(), static_cast<double>(kShards * kEpochs * kAddsPerEpoch));
}

TEST(ShardCoordinatorTest, ShardsSeeDistinctIndices) {
  constexpr size_t kShards = 6;
  ShardCoordinator coordinator(kShards);
  std::vector<std::atomic<int>> seen(kShards);
  for (auto& s : seen) {
    s.store(0);
  }
  coordinator.RunEpoch([&](size_t shard) {
    ASSERT_LT(shard, kShards);
    seen[shard].fetch_add(1);
  });
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(seen[s].load(), 1) << "shard " << s;
  }
}

TEST(ShardCoordinatorTest, DestructorJoinsWorkersCleanly) {
  // Construct/destroy repeatedly, including with zero epochs run, to chase
  // shutdown races in the null-work stop signal.
  for (int round = 0; round < 20; ++round) {
    ShardCoordinator coordinator(3);
    if (round % 2 == 0) {
      coordinator.RunEpoch([](size_t) {});
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace trenv
