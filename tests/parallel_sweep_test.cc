// Tests for the sweep-level concurrency layer: ThreadPool, ParallelSweep,
// and the invariant the parallel figure benches rely on — running N
// independent simulations on worker threads yields bitwise-identical
// metrics to running them serially.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_schedule.h"
#include "src/obs/trace.h"
#include "src/platform/cluster.h"
#include "src/platform/testbed.h"
#include "src/sim/thread_pool.h"
#include "src/workload/traces.h"

namespace trenv {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { ++count; });
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, ClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ParallelSweepTest, ResultsComeBackInIndexOrder) {
  std::vector<size_t> squares = bench::ParallelSweep(
      100, /*jobs=*/8, [](size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ParallelSweepTest, EmptySweepReturnsEmpty) {
  std::vector<int> none = bench::ParallelSweep(0, 4, [](size_t) { return 1; });
  EXPECT_TRUE(none.empty());
}

// One simulation run distilled to exactly-comparable numbers. Doubles are
// compared with ==: a deterministic single-threaded sim must produce the
// same bits no matter which OS thread hosts it.
struct RunDigest {
  uint64_t invocations = 0;
  uint64_t cold = 0;
  uint64_t warm = 0;
  uint64_t peak_memory = 0;
  double e2e_mean = 0;
  double e2e_p99 = 0;

  bool operator==(const RunDigest& other) const = default;
};

std::vector<RunDigest> RunSweep(unsigned jobs) {
  const SystemKind kinds[] = {SystemKind::kCriu, SystemKind::kTrEnvCxl,
                              SystemKind::kTrEnvRdma};
  return bench::ParallelSweep(std::size(kinds), jobs, [&](size_t i) {
    Rng rng(7);  // same seed per config: determinism must come from the sim
    Schedule schedule =
        MakePoissonWorkload({"DH", "JS", "IR"}, 4.0, SimDuration::Minutes(2), 0.3, rng);
    Testbed bed(kinds[i]);
    if (!bed.DeployTable4Functions().ok()) {
      return RunDigest{};
    }
    (void)bed.platform().Run(schedule);
    const FunctionMetrics agg = bed.platform().metrics().Aggregate();
    RunDigest digest;
    digest.invocations = agg.invocations;
    digest.cold = agg.cold_starts;
    digest.warm = agg.warm_starts;
    digest.peak_memory = bed.platform().metrics().peak_memory_bytes();
    digest.e2e_mean = agg.e2e_ms.Mean();
    digest.e2e_p99 = agg.e2e_ms.P99();
    return digest;
  });
}

TEST(ParallelSweepTest, ConcurrentSimulationsMatchSerialBitwise) {
  const std::vector<RunDigest> serial = RunSweep(/*jobs=*/1);
  const std::vector<RunDigest> parallel = RunSweep(/*jobs=*/3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_GT(serial[i].invocations, 0u) << "config " << i << " ran nothing";
    EXPECT_EQ(serial[i], parallel[i]) << "config " << i << " diverged under threading";
  }
  // Repeat the parallel sweep: still identical (no run-to-run jitter).
  EXPECT_EQ(RunSweep(/*jobs=*/3), parallel);
}

// Chaos variant of the sweep invariant: with an ACTIVE FaultSchedule
// (crashes, restarts, CXL degradation) the injection sequence and recovery
// metrics must still be bitwise-identical across worker threads.
struct ChaosDigest {
  std::vector<FaultInjector::Injection> injections;
  uint64_t accepted = 0;
  uint64_t invocations = 0;
  uint64_t failovers = 0;
  uint64_t crashes = 0;
  double e2e_mean = 0;
  double e2e_p99 = 0;

  bool operator==(const ChaosDigest& other) const = default;
};

std::vector<ChaosDigest> RunChaosSweep(unsigned jobs) {
  const uint64_t seeds[] = {11, 22, 33, 44};
  return bench::ParallelSweep(std::size(seeds), jobs, [&](size_t i) {
    ClusterConfig config;
    config.nodes = 3;
    config.dispatch = ClusterConfig::Dispatch::kRoundRobin;
    config.faults.seed = seeds[i];
    config.faults.Add(NodeCrashWindow(SimTime::Zero() + SimDuration::Seconds(1),
                                      SimTime::Zero() + SimDuration::Seconds(2), 1.0,
                                      kAnyTarget, SimDuration::Seconds(1)));
    config.faults.Add(LinkFaultWindow(FaultDomain::kCxlPortDegrade,
                                      SimTime::Zero() + SimDuration::Seconds(2),
                                      SimTime::Zero() + SimDuration::Seconds(3), 1.0,
                                      /*severity=*/2.0));
    Cluster cluster(config);
    if (!cluster.DeployTable4Functions().ok()) {
      return ChaosDigest{};
    }
    Rng rng(seeds[i] ^ 0xC4A05);
    Schedule schedule =
        MakePoissonWorkload({"JS", "DH", "IR"}, 6.0, SimDuration::Seconds(5), 0.4, rng);
    if (!cluster.Run(schedule).ok()) {
      return ChaosDigest{};
    }
    const FunctionMetrics agg = cluster.AggregateMetrics();
    ChaosDigest digest;
    digest.injections = cluster.fault_injector()->injection_log();
    digest.accepted = cluster.accepted_invocations();
    digest.invocations = agg.invocations;
    digest.failovers = cluster.fault_injector()->failovers();
    digest.crashes = cluster.fault_injector()->crashes();
    digest.e2e_mean = agg.e2e_ms.Mean();
    digest.e2e_p99 = agg.e2e_ms.P99();
    return digest;
  });
}

TEST(ParallelSweepTest, ChaosSimulationsMatchSerialBitwise) {
  const std::vector<ChaosDigest> serial = RunChaosSweep(/*jobs=*/1);
  const std::vector<ChaosDigest> parallel = RunChaosSweep(/*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_GT(serial[i].invocations, 0u) << "seed " << i << " ran nothing";
    EXPECT_FALSE(serial[i].injections.empty()) << "seed " << i << " injected no faults";
    EXPECT_EQ(serial[i].accepted, serial[i].invocations)
        << "seed " << i << " lost accepted invocations";
    EXPECT_EQ(serial[i], parallel[i]) << "seed " << i << " diverged under threading";
  }
  EXPECT_EQ(RunChaosSweep(/*jobs=*/4), parallel);
}

TEST(TracerMergeTest, RemapsProcessAndSpanIds) {
  obs::Tracer sink;
  sink.set_enabled(true);
  const obs::ProcessId sink_pid = sink.RegisterProcess("main", nullptr);
  const obs::SpanId root = sink.StartSpan({sink_pid, 0}, "root", "x");
  sink.EndSpan(root);

  obs::Tracer run;
  run.set_enabled(true);
  const obs::ProcessId run_pid = run.RegisterProcess("worker", nullptr);
  const obs::SpanId parent = run.StartSpan({run_pid, 0}, "parent", "x");
  const obs::SpanId child = run.StartSpan({run_pid, 0}, "child", "x", parent);
  run.EndSpan(child);
  run.EndSpan(parent);

  sink.MergeFrom(run);
  ASSERT_EQ(sink.spans().size(), 3u);
  const auto& merged_parent = sink.spans()[1];
  const auto& merged_child = sink.spans()[2];
  // Span ids and parent links shifted past the sink's existing spans.
  EXPECT_EQ(merged_parent.id, root + 1);
  EXPECT_EQ(merged_child.parent, merged_parent.id);
  // The run's process got a fresh pid in the sink, distinct from "main".
  EXPECT_NE(merged_parent.loc.pid, sink_pid);
  EXPECT_EQ(merged_parent.loc.pid, merged_child.loc.pid);
}

}  // namespace
}  // namespace trenv
