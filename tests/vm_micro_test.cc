// Unit tests for the microVM building blocks: startup breakdown fields,
// system configurations, and per-VM memory accounting.
#include <gtest/gtest.h>

#include "src/common/cost_model.h"
#include "src/vm/micro_vm.h"

namespace trenv {
namespace {

const AgentProfile& Blackjack() { return *FindAgent("Blackjack"); }

TEST(VmConfigTest, PresetsEncodeTheRightMechanisms) {
  const VmSystemConfig e2b = E2bConfig();
  EXPECT_FALSE(e2b.pooled_sandbox);
  EXPECT_EQ(e2b.storage, VmSystemConfig::Storage::kVirtioBlk);
  EXPECT_FALSE(e2b.share_guest_memory);

  const VmSystemConfig e2b_plus = E2bPlusConfig();
  EXPECT_EQ(e2b_plus.storage, VmSystemConfig::Storage::kRundRootfs);
  // RunD's memfd-backed sharing is incompatible with CoW guest-memory
  // sharing (section 6.1) — the config must reflect that.
  EXPECT_FALSE(e2b_plus.share_guest_memory);

  const VmSystemConfig ch = VanillaChConfig();
  EXPECT_EQ(ch.mem_restore, VmSystemConfig::MemRestore::kFullCopy);

  const VmSystemConfig trenv = TrEnvVmConfig();
  EXPECT_TRUE(trenv.pooled_sandbox);
  EXPECT_TRUE(trenv.clone_into_cgroup);
  EXPECT_EQ(trenv.mem_restore, VmSystemConfig::MemRestore::kMmapTemplate);
  EXPECT_TRUE(trenv.share_guest_memory);
  EXPECT_EQ(trenv.storage, VmSystemConfig::Storage::kPmemUnionFs);
  EXPECT_FALSE(trenv.browser_sharing);

  const VmSystemConfig trenv_s = TrEnvSConfig();
  EXPECT_TRUE(trenv_s.browser_sharing);
  EXPECT_EQ(trenv_s.agents_per_browser, 10u);
}

TEST(VmStartupBreakdownTest, ComponentsMatchPaperNumbers) {
  const auto e2b = ComputeVmStartup(E2bConfig(), Blackjack(), 0, false);
  // Section 9.6.1: ~97 ms network setup, ~63 ms cgroup migration.
  EXPECT_NEAR(e2b.network.millis(), 97, 1);
  EXPECT_NEAR(e2b.cgroup.millis(), 63, 1);
  EXPECT_GT(e2b.vmm.millis(), 20);
  EXPECT_EQ(e2b.guest, cost::kVmGuestResume);
  EXPECT_DOUBLE_EQ(e2b.Total().millis(), (e2b.network + e2b.cgroup + e2b.vmm + e2b.memory +
                                          e2b.guest)
                                             .millis());

  const auto trenv = ComputeVmStartup(TrEnvVmConfig(), Blackjack(), 0, true);
  // Repurposed sandbox: sub-millisecond netns + cgroup.
  EXPECT_LT(trenv.network.millis(), 1.0);
  EXPECT_LT(trenv.cgroup.millis(), 1.0);
  EXPECT_LT(trenv.memory.millis(), 10.0);
}

TEST(VmStartupBreakdownTest, FullCopyScalesWithGuestSize) {
  AgentProfile small = Blackjack();
  small.vm_memory_bytes = 1 * kGiB;
  AgentProfile big = Blackjack();
  big.vm_memory_bytes = 4 * kGiB;
  const auto copy_small = ComputeVmStartup(VanillaChConfig(), small, 0, false);
  const auto copy_big = ComputeVmStartup(VanillaChConfig(), big, 0, false);
  EXPECT_NEAR(copy_big.memory.millis() / copy_small.memory.millis(), 4.0, 0.01);
  // Template restore does NOT scale with guest size.
  const auto tmpl_small = ComputeVmStartup(TrEnvVmConfig(), small, 0, true);
  const auto tmpl_big = ComputeVmStartup(TrEnvVmConfig(), big, 0, true);
  EXPECT_EQ(tmpl_small.memory.nanos(), tmpl_big.memory.nanos());
}

TEST(MicroVmTest, SharedGuestMemoryKeepsReadOnlyFractionRemote) {
  const VmSystemConfig trenv = TrEnvVmConfig();
  PageCache host("host");
  MicroVm vm(1, &Blackjack(), &trenv, &host, 100);
  // Blackjack: 60% of dynamic memory is read-only-shareable.
  const int64_t delta = vm.ApplyMemoryDelta(100 * kMiB);
  EXPECT_NEAR(static_cast<double>(delta), 40.0 * static_cast<double>(kMiB),
              static_cast<double>(kMiB));
  EXPECT_EQ(vm.anon_local_bytes(), static_cast<uint64_t>(delta));
}

TEST(MicroVmTest, UnsharedGuestMemoryIsFullyLocal) {
  const VmSystemConfig e2b = E2bConfig();
  PageCache host("host");
  MicroVm vm(1, &Blackjack(), &e2b, &host, 100);
  EXPECT_EQ(vm.ApplyMemoryDelta(100 * kMiB), static_cast<int64_t>(100 * kMiB));
}

TEST(MicroVmTest, ReleaseNeverUnderflows) {
  const VmSystemConfig e2b = E2bConfig();
  PageCache host("host");
  MicroVm vm(1, &Blackjack(), &e2b, &host, 100);
  vm.ApplyMemoryDelta(10 * kMiB);
  // Release more than resident: clamps at zero.
  const int64_t released = vm.ApplyMemoryDelta(-static_cast<int64_t>(50 * kMiB));
  EXPECT_EQ(released, -static_cast<int64_t>(10 * kMiB));
  EXPECT_EQ(vm.anon_local_bytes(), 0u);
}

TEST(MicroVmTest, LocalBytesIncludesOverheadAndCaches) {
  const VmSystemConfig e2b = E2bConfig();
  PageCache host("host");
  MicroVm vm(1, &Blackjack(), &e2b, &host, 100);
  vm.ApplyMemoryDelta(16 * kMiB);
  vm.storage().ReadBase(0, BytesToPages(8 * kMiB));
  EXPECT_EQ(vm.LocalBytes(), 16 * kMiB + 8 * kMiB + cost::kVmGuestOverheadBytes);
}

}  // namespace
}  // namespace trenv
