// Cross-module integration tests: full round trips through checkpoint ->
// dedup -> template -> attach -> execute -> live re-checkpoint, and
// end-to-end platform scenarios that exercise several subsystems at once.
#include <gtest/gtest.h>

#include "src/criu/checkpointer.h"
#include "src/criu/deduplicator.h"
#include "src/mempool/cxl_pool.h"
#include "src/platform/testbed.h"
#include "src/workload/traces.h"

namespace trenv {
namespace {

// Restores a process from a consolidated image via templates, lets it write,
// re-checkpoints the LIVE process, and verifies the dump captures both the
// shared image and the private modifications.
TEST(RoundTripTest, CheckpointOfRestoredProcessCapturesCowState) {
  CxlPool cxl(8 * kGiB);
  BackendRegistry backends;
  backends.Register(&cxl);
  TieredPool tiered;
  tiered.AddTier(&cxl);
  SnapshotDedupStore dedup(&tiered);
  Checkpointer checkpointer;
  MmtApi api(&backends);
  FrameAllocator frames(8 * kGiB);
  FaultHandler kernel(&frames, &backends);

  // Synthesize + consolidate a function snapshot.
  FunctionProfile profile;
  profile.name = "round-trip";
  profile.language = "python";
  profile.image_bytes = 32 * kMiB;
  profile.threads = 4;
  FunctionSnapshot snapshot = checkpointer.Checkpoint(profile);
  auto image = dedup.Store(snapshot);
  ASSERT_TRUE(image.ok());

  // Build a template from the placements and attach it.
  MmtId id = api.MmtCreate(profile.name);
  for (const auto& placed : image->processes[0]) {
    ASSERT_TRUE(api.MmtAddMap(id, placed.region.start, placed.region.bytes(),
                              placed.region.prot, placed.region.is_private,
                              placed.region.type == VmaType::kFileBacked ? 1 : -1, 0,
                              placed.region.name)
                    .ok());
    uint64_t done = 0;
    for (const auto& chunk : placed.chunks) {
      ASSERT_TRUE(api.MmtSetupPt(id, placed.region.start + done * kPageSize,
                                 chunk.npages * kPageSize, chunk.offset, chunk.pool)
                      .ok());
      done += chunk.npages;
    }
  }
  Process process(1, "round-trip-main", 4, 8);
  ASSERT_TRUE(api.MmtAttach(id, &process.mm()).ok());

  // Mutate a few heap pages.
  const MemoryRegion* heap = nullptr;
  for (const auto& region : snapshot.processes[0].regions) {
    if (region.name == "[heap]") {
      heap = &region;
    }
  }
  ASSERT_NE(heap, nullptr);
  ASSERT_TRUE(kernel.WritePage(process.mm(), heap->start, 0xD1127).ok());
  ASSERT_TRUE(kernel.WritePage(process.mm(), heap->start + 5 * kPageSize, 0xD1128).ok());

  // Dump the live process. The dump must reproduce current contents:
  // written pages with new values, untouched pages with image values.
  ProcessImage dump = checkpointer.CheckpointProcess(process);
  EXPECT_EQ(dump.threads, 4u);
  auto content_at = [&](Vaddr addr) -> PageContent {
    for (const auto& region : dump.regions) {
      if (addr >= region.start && addr < region.start + region.bytes()) {
        const uint64_t idx = (addr - region.start) / kPageSize;
        return region.constant_content ? region.content_base : region.content_base + idx;
      }
    }
    ADD_FAILURE() << "address not covered by dump";
    return 0;
  };
  EXPECT_EQ(content_at(heap->start), 0xD1127u);
  EXPECT_EQ(content_at(heap->start + 5 * kPageSize), 0xD1128u);
  EXPECT_EQ(content_at(heap->start + kPageSize), heap->content_base + 1);

  // The re-dump can itself be consolidated: shared parts dedup, private
  // writes add a few unique pages.
  FunctionSnapshot second_gen;
  second_gen.function = "round-trip-gen2";
  second_gen.processes.push_back(dump);
  const uint64_t unique_before = dedup.stored_unique_pages();
  auto image2 = dedup.Store(second_gen);
  ASSERT_TRUE(image2.ok());
  const uint64_t added = dedup.stored_unique_pages() - unique_before;
  EXPECT_GT(added, 0u);
  EXPECT_LT(added, snapshot.TotalPages() / 2);
}

TEST(IntegrationTest, HeterogeneousRepurposeChainAcrossLanguages) {
  // A Python function's sandbox serves a Node.js function next, then a
  // Python one again — the heterogeneous-language transition of §5.2.1.
  PlatformConfig config;
  config.keep_alive_ttl = SimDuration::Seconds(5);
  Testbed bed(SystemKind::kTrEnvCxl, config);
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  Schedule schedule{{SimTime::Zero(), "JS"},                                    // python
                    {SimTime::Zero() + SimDuration::Seconds(30), "CR"},        // nodejs
                    {SimTime::Zero() + SimDuration::Seconds(60), "DH"}};       // python
  ASSERT_TRUE(bed.platform().Run(schedule).ok());
  EXPECT_EQ(bed.platform().metrics().per_function().at("CR").repurposed_starts, 1u);
  EXPECT_EQ(bed.platform().metrics().per_function().at("DH").repurposed_starts, 1u);
  EXPECT_EQ(bed.platform().failed_invocations(), 0u);
}

TEST(IntegrationTest, MixedWorkloadAcrossAllEnginesStaysConsistent) {
  Rng rng(88);
  Schedule schedule = MakeHuaweiLikeWorkload({"DH", "JS", "CR", "IR", "IFR"}, rng);
  // Truncate to keep the test quick.
  if (schedule.size() > 1500) {
    schedule.resize(1500);
  }
  for (SystemKind kind : {SystemKind::kCriu, SystemKind::kFaasnapPlus, SystemKind::kTrEnvCxl,
                          SystemKind::kTrEnvDramHot}) {
    Testbed bed(kind);
    ASSERT_TRUE(bed.DeployTable4Functions().ok());
    ASSERT_TRUE(bed.platform().Run(schedule).ok());
    const auto agg = bed.platform().metrics().Aggregate();
    EXPECT_EQ(agg.invocations, schedule.size()) << SystemName(kind);
    EXPECT_EQ(agg.invocations, agg.warm_starts + agg.cold_starts + agg.repurposed_starts)
        << SystemName(kind);
    EXPECT_EQ(bed.platform().failed_invocations(), 0u) << SystemName(kind);
    // Latency recorders agree with the invocation count.
    EXPECT_EQ(agg.e2e_ms.count(), schedule.size()) << SystemName(kind);
    // Startup never exceeds end-to-end.
    EXPECT_LE(agg.startup_ms.Max(), agg.e2e_ms.Max()) << SystemName(kind);
  }
}

TEST(IntegrationTest, SnapshotPoolSurvivesTemplateDestruction) {
  // Destroying a template must not free the consolidated image (other
  // templates and nodes may map it).
  Testbed bed(SystemKind::kTrEnvCxl);
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  const uint64_t pool_used = bed.cxl().used_bytes();
  auto* engine = static_cast<TrEnvEngine*>(&bed.engine());
  const auto* templates = engine->TemplatesFor("JS");
  ASSERT_NE(templates, nullptr);
  // (Destroy through the registry the way an unload would.)
  Testbed other(SystemKind::kTrEnvCxl);
  (void)other;
  EXPECT_EQ(bed.cxl().used_bytes(), pool_used);
}

TEST(IntegrationTest, ColdStartContentionEmergesFromConcurrency) {
  // 15 simultaneous cold starts: the netns/cgroup contention model must
  // push P99 startup well above the single-start cost (section 3.3).
  Testbed bed(SystemKind::kCriu);
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  Schedule burst;
  for (int i = 0; i < 15; ++i) {
    burst.push_back({SimTime::Zero() + SimDuration::Micros(i), "DH"});
  }
  ASSERT_TRUE(bed.platform().Run(burst).ok());
  const auto& m = bed.platform().metrics().per_function().at("DH");
  EXPECT_GT(m.startup_ms.Max(), m.startup_ms.Min() * 1.8);
  EXPECT_GT(m.startup_ms.Max(), 300.0);  // ~400 ms netns at 15-way (paper)
}

}  // namespace
}  // namespace trenv
