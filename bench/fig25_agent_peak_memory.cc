// Figure 25: peak memory usage of the agents across VM platforms
// (E2B, E2B+, TrEnv with pmem union-fs + guest-memory sharing + browser
// sharing), with 40 concurrent instances per agent.
#include <iostream>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/vm/vm_platform.h"

namespace trenv {
namespace {

double PeakGiB(const VmSystemConfig& config, const std::string& agent, int count) {
  AgentVmPlatform platform(config);
  for (const auto& profile : Table2Agents()) {
    (void)platform.DeployAgent(profile);
  }
  for (int i = 0; i < count; ++i) {
    (void)platform.SubmitLaunch(SimTime::Zero() + SimDuration::Millis(i * 40), agent);
  }
  platform.RunToCompletion();
  return platform.memory_gauge().peak() / static_cast<double>(kGiB);
}

void Run() {
  PrintBanner(std::cout, "Figure 25: peak memory of agents, 40 concurrent instances (GiB)");
  Table table({"Agent", "E2B", "E2B+", "TrEnv", "TrEnv vs E2B", "TrEnv vs E2B+"});
  for (const auto& profile : Table2Agents()) {
    const double e2b = PeakGiB(E2bConfig(), profile.name, 40);
    const double e2b_plus = PeakGiB(E2bPlusConfig(), profile.name, 40);
    const double trenv = PeakGiB(TrEnvVmConfig(), profile.name, 40);
    table.AddRow({profile.name, Table::Num(e2b, 2), Table::Num(e2b_plus, 2),
                  Table::Num(trenv, 2), Table::Pct(1.0 - trenv / e2b),
                  Table::Pct(1.0 - trenv / e2b_plus)});
  }
  table.Print(std::cout);
  std::cout << "Paper reference: TrEnv saves 10%-61% vs E2B and up to 48% vs E2B+; agents "
               "with little file I/O (Blackjack, Bug fixer) benefit least.\n";
}

}  // namespace
}  // namespace trenv

int main() {
  trenv::Run();
  return 0;
}
