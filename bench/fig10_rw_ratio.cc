// Figure 10: read-only vs written memory ratio of the serverless functions,
// measured the paper's way — restore one instance from its snapshot, run a
// complete invocation, and count the pages that were read vs written.
#include <iostream>

#include "bench/bench_util.h"

namespace trenv {
namespace {

void Run() {
  PrintBanner(std::cout, "Figure 10: read-only vs written page ratio per function");
  Testbed bed(SystemKind::kTrEnvCxl);
  if (!bed.DeployTable4Functions().ok()) {
    std::cerr << "deploy failed\n";
    return;
  }
  FrameAllocator frames(64ULL * kGiB);
  PidAllocator pids;
  RestoreContext ctx;
  ctx.frames = &frames;
  ctx.backends = &bed.backends();
  ctx.pids = &pids;

  Table table({"Func", "Pages read-only", "Pages written", "Read-only ratio"});
  for (const auto& profile : Table4Functions()) {
    auto outcome = bed.engine().Restore(profile, ctx);
    if (!outcome.ok()) {
      std::cerr << "restore failed for " << profile.name << "\n";
      continue;
    }
    // One complete invocation's page work.
    auto overheads = bed.engine().OnExecute(profile, *outcome->instance, ctx);
    if (!overheads.ok()) {
      continue;
    }
    uint64_t read_only = 0;
    uint64_t written = 0;
    for (auto& process : outcome->instance->processes()) {
      const MmStats& stats = process->mm().stats();
      written += stats.cow_faults;
      read_only += stats.direct_remote_reads;
    }
    const double ratio =
        read_only + written == 0
            ? 0
            : static_cast<double>(read_only) / static_cast<double>(read_only + written);
    table.AddRow({profile.name, std::to_string(read_only), std::to_string(written),
                  Table::Pct(ratio)});
    bed.engine().OnExecuteDone(*outcome->instance);
    bed.engine().Retire(std::move(outcome->instance), ctx);
  }
  table.Print(std::cout);
  std::cout << "Paper reference: 24% to 90% of pages used during execution are read-only "
               "(IFR at the low end, IR at the high end).\n";
}

}  // namespace
}  // namespace trenv

int main() {
  trenv::Run();
  return 0;
}
