// Table 2: characteristics of representative agents, measured by running
// each agent once (uncontended) on the VM platform with trace replay.
#include <iostream>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/vm/vm_platform.h"

namespace trenv {
namespace {

void Run() {
  PrintBanner(std::cout, "Table 2: agent characteristics (measured on the VM platform)");
  AgentVmPlatform platform(TrEnvVmConfig(), AgentPlatformConfig{.cores = 64});
  for (const auto& agent : Table2Agents()) {
    if (!platform.DeployAgent(agent).ok()) {
      std::cerr << "deploy failed\n";
      return;
    }
  }
  Table table({"Agent", "Framework", "E2E Lat", "Memory", "CPU Time", "CPU util"});
  for (const auto& agent : Table2Agents()) {
    AgentVmPlatform solo(TrEnvVmConfig(), AgentPlatformConfig{.cores = 64});
    (void)solo.DeployAgent(agent);
    (void)solo.SubmitLaunch(SimTime::Zero(), agent.name);
    solo.RunToCompletion();
    const auto& metrics = solo.metrics().at(agent.name);
    const AgentTrace* trace = solo.TraceFor(agent.name);
    table.AddRow({agent.name, agent.framework, Table::Num(metrics.e2e_s.Mean(), 1) + " s",
                  FormatBytes(agent.dynamic_memory_bytes),
                  Table::Num(trace->TotalToolCpu().seconds(), 2) + " s",
                  Table::Pct(trace->TotalToolCpu().seconds() / metrics.e2e_s.Mean())});
  }
  table.Print(std::cout);
  std::cout << "Paper reference (E2E/Mem/CPU): Blackjack 3.2s/74MB/411ms; Bug fixer "
               "36.5s/95MB/809ms; Map reduce 56.5s/199MB/1.2s; Shop assistant "
               "140.7s/1080MB/10.3s; Blog summary 193.1s/1246MB/56.8s; Game design "
               "107.0s/1389MB/7.5s.\n";
}

}  // namespace
}  // namespace trenv

int main() {
  trenv::Run();
  return 0;
}
