// Ablation: rack-level cross-node sharing (paper sections 5.1 and 8.2).
// Scales a TrEnv cluster from 1 to 12 nodes (one CXL MHD port each) and
// measures where the memory lives: one pool copy per rack plus thin
// per-node CoW state, versus the per-node-everything world of the
// baselines (modelled as nodes x a standalone CRIU testbed). The CRIU
// baseline and the five cluster sizes are six independent simulations
// (each Cluster owns its stats registry), run as one ParallelSweep.
//
// A second section turns the pool control plane on: the dedup'd template
// chunks become consistent-hash shards across 4 pool nodes, and the table
// shows how evenly the ring spreads them (primary min..max per pool node)
// and how much attach traffic each dispatch policy actually pulls.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "bench/bench_util.h"
#include "src/platform/cluster.h"

namespace trenv {
namespace {

const uint32_t kNodeCounts[] = {1u, 2u, 4u, 8u, 12u};

struct RackRow {
  double pool_gib = 0;
  double dram_gib = 0;
  double dedup_ratio = 0;
  bool ok = false;
  // On failure: the cluster's error, which names the rejecting node.
  std::string error;
};

// Baseline: what N independent CRIU nodes would hold for the same load
// (each node keeps full per-instance images locally).
double CriuNodePeakGib() {
  Testbed bed(SystemKind::kCriu);
  (void)bed.DeployTable4Functions();
  Schedule schedule;
  for (int i = 0; i < 8; ++i) {
    schedule.push_back({SimTime::Zero() + SimDuration::Millis(i * 5), i % 2 ? "IR" : "JS"});
  }
  (void)bed.platform().Run(schedule);
  return static_cast<double>(bed.platform().metrics().peak_memory_bytes()) /
         static_cast<double>(kGiB);
}

// Every node serves the same mix concurrently.
Schedule ClusterSchedule(uint32_t nodes) {
  Schedule schedule;
  for (uint32_t n = 0; n < nodes; ++n) {
    for (int i = 0; i < 8; ++i) {
      schedule.push_back(
          {SimTime::Zero() + SimDuration::Millis(n * 40 + i * 5), i % 2 ? "IR" : "JS"});
    }
  }
  SortSchedule(schedule);
  return schedule;
}

RackRow RunCluster(uint32_t nodes, uint32_t shards) {
  RackRow row;
  ClusterConfig config;
  config.nodes = nodes;
  Cluster cluster(config);
  if (const Status status = cluster.DeployTable4Functions(); !status.ok()) {
    row.error = status.message();
    return row;
  }
  if (const Status status = bench::RunCluster(cluster, ClusterSchedule(nodes), shards);
      !status.ok()) {
    row.error = status.message();
    return row;
  }
  uint64_t dram_peak = 0;
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    dram_peak += cluster.node(i).metrics().peak_memory_bytes();
  }
  row.pool_gib = static_cast<double>(cluster.PoolBytes()) / static_cast<double>(kGiB);
  row.dram_gib = static_cast<double>(dram_peak) / static_cast<double>(kGiB);
  row.dedup_ratio = cluster.dedup().DedupRatio();
  row.ok = true;
  return row;
}

// One poolmgr-enabled run: where the ring put the shards and what the
// dispatch policy pulled over the NICs for the same workload.
struct PoolRow {
  bool ok = false;
  std::string error;
  size_t shards = 0;
  double stored_mib = 0;       // primaries + replicas across all pool nodes
  double primary_min_mib = 0;  // least-loaded pool node, by primary pages
  double primary_max_mib = 0;  // most-loaded pool node, by primary pages
  double fetch_mib = 0;
  uint64_t lease_hits = 0;
  uint64_t lease_misses = 0;
};

constexpr double kPagesPerMiB = 256.0;  // 4 KiB pages

PoolRow RunPoolCluster(uint32_t nodes, ClusterConfig::Dispatch dispatch, uint32_t shards) {
  PoolRow row;
  ClusterConfig config;
  config.nodes = nodes;
  config.dispatch = dispatch;
  config.poolmgr.enabled = true;
  Cluster cluster(config);
  if (const Status status = cluster.DeployTable4Functions(); !status.ok()) {
    row.error = status.message();
    return row;
  }
  if (const Status status = bench::RunCluster(cluster, ClusterSchedule(nodes), shards);
      !status.ok()) {
    row.error = status.message();
    return row;
  }
  const PoolManager& mgr = *cluster.pool_manager();
  row.shards = mgr.shard_count();
  const std::vector<uint64_t> stored = mgr.ShardPagesPerNode();
  const std::vector<uint64_t> primary = mgr.PrimaryPagesPerNode();
  row.stored_mib = static_cast<double>(std::accumulate(stored.begin(), stored.end(),
                                                       uint64_t{0})) /
                   kPagesPerMiB;
  const auto [min_it, max_it] = std::minmax_element(primary.begin(), primary.end());
  row.primary_min_mib = static_cast<double>(*min_it) / kPagesPerMiB;
  row.primary_max_mib = static_cast<double>(*max_it) / kPagesPerMiB;
  row.fetch_mib = static_cast<double>(mgr.remote_fetch_pages()) / kPagesPerMiB;
  row.lease_hits = mgr.lease_hits();
  row.lease_misses = mgr.lease_misses();
  row.ok = true;
  return row;
}

void Run(bench::BenchEnv& env) {
  // Cluster runs execute sharded when --shards > 1; the report is identical
  // at any value (zero-lookahead RunSharded == Run).
  const uint32_t shards =
      static_cast<uint32_t>(std::atoi(env.ExtraValue("--shards=", "1").c_str()));
  PrintBanner(std::cout, "Ablation: rack-level sharing across nodes (GiB)");

  // Slot 0 is the CRIU baseline; slots 1..N are the cluster sizes.
  double criu_node_peak = 0;
  std::vector<RackRow> rows =
      bench::ParallelSweep(1 + std::size(kNodeCounts), env.jobs, [&](size_t idx) {
        if (idx == 0) {
          RackRow row;
          row.pool_gib = CriuNodePeakGib();
          row.ok = true;
          return row;
        }
        return RunCluster(kNodeCounts[idx - 1], shards);
      });
  criu_node_peak = rows[0].pool_gib;

  Table table({"Nodes", "Pool copy", "Node DRAM (sum)", "Rack total", "CRIU rack equiv",
               "saving", "dedup ratio"});
  for (size_t i = 0; i < std::size(kNodeCounts); ++i) {
    const uint32_t nodes = kNodeCounts[i];
    const RackRow& row = rows[1 + i];
    if (!row.ok) {
      std::cerr << "cluster run failed for " << nodes << " nodes: " << row.error << "\n";
      return;
    }
    const double rack = row.pool_gib + row.dram_gib;
    const double criu_rack = criu_node_peak * nodes;
    table.AddRow({std::to_string(nodes), Table::Num(row.pool_gib, 2),
                  Table::Num(row.dram_gib, 2), Table::Num(rack, 2), Table::Num(criu_rack, 2),
                  Table::Pct(1.0 - rack / criu_rack), Table::Num(row.dedup_ratio, 3)});
  }
  table.Print(std::cout);
  std::cout << "Paper reference (8.2): read-only state needs one copy per rack; memory "
               "cost shrinks by roughly the machine count (~10x at rack scale).\n\n";

  PrintBanner(std::cout, "Pool control plane: shard placement and attach traffic (MiB)");
  const uint32_t kPoolNodeCounts[] = {4u, 8u};
  const ClusterConfig::Dispatch kPolicies[] = {ClusterConfig::Dispatch::kLeastLoaded,
                                               ClusterConfig::Dispatch::kTemplateLocality};
  const std::vector<PoolRow> pool_rows = bench::ParallelSweep(
      std::size(kPoolNodeCounts) * std::size(kPolicies), env.jobs, [&](size_t idx) {
        return RunPoolCluster(kPoolNodeCounts[idx / std::size(kPolicies)],
                              kPolicies[idx % std::size(kPolicies)], shards);
      });
  Table pool_table({"Nodes", "Dispatch", "Shards", "Stored", "Primary min..max",
                    "Fetched", "Lease hits", "Lease misses"});
  for (size_t i = 0; i < pool_rows.size(); ++i) {
    const PoolRow& row = pool_rows[i];
    const uint32_t nodes = kPoolNodeCounts[i / std::size(kPolicies)];
    const bool locality = kPolicies[i % std::size(kPolicies)] ==
                          ClusterConfig::Dispatch::kTemplateLocality;
    if (!row.ok) {
      std::cerr << "pool cluster run failed for " << nodes << " nodes: " << row.error
                << "\n";
      return;
    }
    pool_table.AddRow({std::to_string(nodes), locality ? "locality" : "least-loaded",
                       std::to_string(row.shards), Table::Num(row.stored_mib, 1),
                       Table::Num(row.primary_min_mib, 1) + ".." +
                           Table::Num(row.primary_max_mib, 1),
                       Table::Num(row.fetch_mib, 1), std::to_string(row.lease_hits),
                       std::to_string(row.lease_misses)});
  }
  pool_table.Print(std::cout);
  std::cout << "Shard placement is pure consistent hashing (dispatch-independent); the "
               "dispatch policy only decides how often workers must pull them.\n";
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  trenv::bench::BenchEnv env(argc, argv, {{"--shards=", "--shards=<n>"}});
  trenv::Run(env);
  env.Finish();
  return 0;
}
