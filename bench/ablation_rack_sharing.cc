// Ablation: rack-level cross-node sharing (paper sections 5.1 and 8.2).
// Scales a TrEnv cluster from 1 to 12 nodes (one CXL MHD port each) and
// measures where the memory lives: one pool copy per rack plus thin
// per-node CoW state, versus the per-node-everything world of the
// baselines (modelled as nodes x a standalone CRIU testbed). The CRIU
// baseline and the five cluster sizes are six independent simulations
// (each Cluster owns its stats registry), run as one ParallelSweep.
#include <iostream>

#include "bench/bench_util.h"
#include "src/platform/cluster.h"

namespace trenv {
namespace {

const uint32_t kNodeCounts[] = {1u, 2u, 4u, 8u, 12u};

struct RackRow {
  double pool_gib = 0;
  double dram_gib = 0;
  double dedup_ratio = 0;
  bool ok = false;
  // On failure: the cluster's error, which names the rejecting node.
  std::string error;
};

// Baseline: what N independent CRIU nodes would hold for the same load
// (each node keeps full per-instance images locally).
double CriuNodePeakGib() {
  Testbed bed(SystemKind::kCriu);
  (void)bed.DeployTable4Functions();
  Schedule schedule;
  for (int i = 0; i < 8; ++i) {
    schedule.push_back({SimTime::Zero() + SimDuration::Millis(i * 5), i % 2 ? "IR" : "JS"});
  }
  (void)bed.platform().Run(schedule);
  return static_cast<double>(bed.platform().metrics().peak_memory_bytes()) /
         static_cast<double>(kGiB);
}

RackRow RunCluster(uint32_t nodes) {
  RackRow row;
  ClusterConfig config;
  config.nodes = nodes;
  Cluster cluster(config);
  if (const Status status = cluster.DeployTable4Functions(); !status.ok()) {
    row.error = status.message();
    return row;
  }
  // Every node serves the same mix concurrently.
  Schedule schedule;
  for (uint32_t n = 0; n < nodes; ++n) {
    for (int i = 0; i < 8; ++i) {
      schedule.push_back(
          {SimTime::Zero() + SimDuration::Millis(n * 40 + i * 5), i % 2 ? "IR" : "JS"});
    }
  }
  SortSchedule(schedule);
  if (const Status status = cluster.Run(schedule); !status.ok()) {
    row.error = status.message();
    return row;
  }
  uint64_t dram_peak = 0;
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    dram_peak += cluster.node(i).metrics().peak_memory_bytes();
  }
  row.pool_gib = static_cast<double>(cluster.PoolBytes()) / static_cast<double>(kGiB);
  row.dram_gib = static_cast<double>(dram_peak) / static_cast<double>(kGiB);
  row.dedup_ratio = cluster.dedup().DedupRatio();
  row.ok = true;
  return row;
}

void Run(bench::BenchEnv& env) {
  PrintBanner(std::cout, "Ablation: rack-level sharing across nodes (GiB)");

  // Slot 0 is the CRIU baseline; slots 1..N are the cluster sizes.
  double criu_node_peak = 0;
  std::vector<RackRow> rows =
      bench::ParallelSweep(1 + std::size(kNodeCounts), env.jobs, [&](size_t idx) {
        if (idx == 0) {
          RackRow row;
          row.pool_gib = CriuNodePeakGib();
          row.ok = true;
          return row;
        }
        return RunCluster(kNodeCounts[idx - 1]);
      });
  criu_node_peak = rows[0].pool_gib;

  Table table({"Nodes", "Pool copy", "Node DRAM (sum)", "Rack total", "CRIU rack equiv",
               "saving", "dedup ratio"});
  for (size_t i = 0; i < std::size(kNodeCounts); ++i) {
    const uint32_t nodes = kNodeCounts[i];
    const RackRow& row = rows[1 + i];
    if (!row.ok) {
      std::cerr << "cluster run failed for " << nodes << " nodes: " << row.error << "\n";
      return;
    }
    const double rack = row.pool_gib + row.dram_gib;
    const double criu_rack = criu_node_peak * nodes;
    table.AddRow({std::to_string(nodes), Table::Num(row.pool_gib, 2),
                  Table::Num(row.dram_gib, 2), Table::Num(rack, 2), Table::Num(criu_rack, 2),
                  Table::Pct(1.0 - rack / criu_rack), Table::Num(row.dedup_ratio, 3)});
  }
  table.Print(std::cout);
  std::cout << "Paper reference (8.2): read-only state needs one copy per rack; memory "
               "cost shrinks by roughly the machine count (~10x at rack scale).\n";
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  trenv::bench::BenchEnv env(argc, argv);
  trenv::Run(env);
  env.Finish();
  return 0;
}
