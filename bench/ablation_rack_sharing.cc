// Ablation: rack-level cross-node sharing (paper sections 5.1 and 8.2).
// Scales a TrEnv cluster from 1 to 12 nodes (one CXL MHD port each) and
// measures where the memory lives: one pool copy per rack plus thin
// per-node CoW state, versus the per-node-everything world of the
// baselines (modelled as nodes x a standalone CRIU testbed).
#include <iostream>

#include "src/common/table.h"
#include "src/platform/cluster.h"
#include "src/platform/testbed.h"

namespace trenv {
namespace {

void Run() {
  PrintBanner(std::cout, "Ablation: rack-level sharing across nodes (GiB)");

  // Baseline: what N independent CRIU nodes would hold for the same load
  // (each node keeps full per-instance images locally).
  auto criu_node_peak = [] {
    Testbed bed(SystemKind::kCriu);
    (void)bed.DeployTable4Functions();
    Schedule schedule;
    for (int i = 0; i < 8; ++i) {
      schedule.push_back({SimTime::Zero() + SimDuration::Millis(i * 5), i % 2 ? "IR" : "JS"});
    }
    (void)bed.platform().Run(schedule);
    return static_cast<double>(bed.platform().metrics().peak_memory_bytes()) /
           static_cast<double>(kGiB);
  }();

  Table table({"Nodes", "Pool copy", "Node DRAM (sum)", "Rack total", "CRIU rack equiv",
               "saving", "dedup ratio"});
  for (uint32_t nodes : {1u, 2u, 4u, 8u, 12u}) {
    ClusterConfig config;
    config.nodes = nodes;
    Cluster cluster(config);
    if (!cluster.DeployTable4Functions().ok()) {
      std::cerr << "deploy failed\n";
      return;
    }
    // Every node serves the same mix concurrently.
    Schedule schedule;
    for (uint32_t n = 0; n < nodes; ++n) {
      for (int i = 0; i < 8; ++i) {
        schedule.push_back({SimTime::Zero() + SimDuration::Millis(n * 40 + i * 5),
                            i % 2 ? "IR" : "JS"});
      }
    }
    SortSchedule(schedule);
    if (!cluster.Run(schedule).ok()) {
      std::cerr << "run failed\n";
      return;
    }
    uint64_t dram_peak = 0;
    for (size_t i = 0; i < cluster.node_count(); ++i) {
      dram_peak += cluster.node(i).metrics().peak_memory_bytes();
    }
    const double pool_gib = static_cast<double>(cluster.PoolBytes()) / static_cast<double>(kGiB);
    const double dram_gib = static_cast<double>(dram_peak) / static_cast<double>(kGiB);
    const double rack = pool_gib + dram_gib;
    const double criu_rack = criu_node_peak * nodes;
    table.AddRow({std::to_string(nodes), Table::Num(pool_gib, 2), Table::Num(dram_gib, 2),
                  Table::Num(rack, 2), Table::Num(criu_rack, 2),
                  Table::Pct(1.0 - rack / criu_rack),
                  Table::Num(cluster.dedup().DedupRatio(), 3)});
  }
  table.Print(std::cout);
  std::cout << "Paper reference (8.2): read-only state needs one copy per rack; memory "
               "cost shrinks by roughly the machine count (~10x at rack scale).\n";
}

}  // namespace
}  // namespace trenv

int main() {
  trenv::Run();
  return 0;
}
