// Pool-control-plane scale sweep: nodes x replication x dispatch policy.
//
// Every run is a rack with the PoolManager enabled — dedup'd template chunks
// sharded across 4 pool nodes by consistent hashing — driven by the same
// fixed-seed Poisson workload. The sweep crosses worker-node count {2,4,8},
// shard replication {1,2} and dispatch policy {least-loaded,
// template-locality} and reports what the control plane moved: remote fetch
// traffic, lease hit rate, attach latency, and end-to-end p99.
//
// The claim under test (checked, not just printed): at >= 4 nodes,
// kTemplateLocality routes invocations to workers that already hold a lease
// (or a warm instance), so it pulls strictly fewer remote pages AND lands a
// p99 attach no worse than kLeastLoaded, which first-touches every function
// on every node. Replication is placement-only on the hot path — lease
// misses read the primary — so r=1 and r=2 rows of the steady sweep match;
// what replication buys is the chaos section below.
//
// Chaos section: a 4-node locality rack where pool node 1 crashes mid-run
// (restarting 30 s later), compared at replication 1 vs 2 and — at
// replication 2 — static vs continuous membership. With replication >= 2 a
// surviving replica is promoted and NO lease is revoked — the run must
// complete every accepted invocation (enforced; exit 1 on loss). With
// replication 1 the lost shards' leases are revoked and reseeded from the
// dedup store, visible as revocations + reseeds + extra refetched pages.
// The continuous row swaps instant crash knowledge for gossip detection
// (phi-accrual suspicion then declaration) and the single-shot rebalancer
// for the budgeted continuous loop; it must still lose nothing, declare and
// rejoin the node, and end fully replicated.
//
// Flags:
//   --jobs=N            sweep threads; the report is byte-identical at any N
//   --bench-json=PATH   append a JSON-lines record to the BENCH trajectory
//   --bench-label=TEXT  label stored in the JSON record
#include <cstdint>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "src/fault/fault_schedule.h"
#include "src/platform/cluster.h"
#include "src/poolctl/control_plane.h"

namespace trenv {
namespace {

using Dispatch = ClusterConfig::Dispatch;

constexpr uint64_t kSeed = 42;
constexpr uint32_t kPoolNodes = 4;
constexpr double kPagesPerMiB = 256.0;  // 4 KiB pages

const char* DispatchName(Dispatch d) {
  return d == Dispatch::kTemplateLocality ? "locality" : "least-loaded";
}

Schedule SweepWorkload() {
  Rng rng(kSeed ^ 0x9001);
  return MakePoissonWorkload({"JS", "DH", "IR", "CR"}, 8.0, SimDuration::Minutes(2), 0.3,
                             rng);
}

struct RunResult {
  bool ok = false;
  uint64_t accepted = 0;
  uint64_t completed = 0;
  uint64_t fetch_pages = 0;
  uint64_t fetch_ops = 0;
  uint64_t coalesced = 0;
  uint64_t lease_hits = 0;
  uint64_t lease_misses = 0;
  uint64_t promotions = 0;
  uint64_t revoked = 0;
  uint64_t reseeded = 0;
  uint64_t deaths = 0;
  uint64_t rejoins = 0;
  uint64_t under_replicated = 0;
  double attach_p50_ms = 0;
  double attach_p99_ms = 0;
  double e2e_p99_ms = 0;
};

RunResult Collect(Cluster& cluster) {
  RunResult r;
  const PoolManager& mgr = *cluster.pool_manager();
  const FunctionMetrics agg = cluster.AggregateMetrics();
  r.ok = true;
  r.accepted = cluster.accepted_invocations();
  r.completed = agg.invocations;
  r.fetch_pages = mgr.remote_fetch_pages();
  r.fetch_ops = mgr.remote_fetch_ops();
  r.coalesced = mgr.coalesced_requests();
  r.lease_hits = mgr.lease_hits();
  r.lease_misses = mgr.lease_misses();
  r.promotions = mgr.replica_promotions();
  r.revoked = mgr.leases_revoked();
  r.reseeded = mgr.reseeded_shards();
  r.under_replicated = mgr.UnderReplicatedShards();
  if (cluster.pool_control() != nullptr) {
    r.deaths = cluster.pool_control()->membership().deaths();
    r.rejoins = cluster.pool_control()->membership().rejoins();
  }
  if (!mgr.attach_ms().empty()) {
    r.attach_p50_ms = mgr.attach_ms().Median();
    r.attach_p99_ms = mgr.attach_ms().P99();
  }
  r.e2e_p99_ms = agg.e2e_ms.P99();
  return r;
}

RunResult RunScale(uint32_t nodes, uint32_t replication, Dispatch dispatch, uint32_t shards) {
  ClusterConfig config;
  config.nodes = nodes;
  config.dispatch = dispatch;
  config.poolmgr.enabled = true;
  config.poolmgr.pool_nodes = kPoolNodes;
  config.poolmgr.replication = replication;
  Cluster cluster(config);
  if (!cluster.DeployTable4Functions().ok()) {
    return {};
  }
  if (!bench::RunCluster(cluster, SweepWorkload(), shards).ok()) {
    return {};
  }
  return Collect(cluster);
}

// One pool node dies mid-run and returns 30 s later. The workload and the
// rack are identical to the replication-2 sweep row; `replication` decides
// whether leases survive the crash, and `continuous` swaps the single-shot
// rebalancer + instant crash knowledge for the poolctl control plane (gossip
// membership must *detect* the death before the budgeted rebalancer may
// react to it).
RunResult RunChaos(uint32_t replication, bool continuous, uint32_t shards) {
  ClusterConfig config;
  config.nodes = 4;
  config.dispatch = Dispatch::kTemplateLocality;
  config.poolmgr.enabled = true;
  config.poolmgr.pool_nodes = kPoolNodes;
  config.poolmgr.replication = replication;
  config.poolctl.enabled = continuous;
  // ~10^5 pages live on the crashed node; size the per-tick budget so the
  // continuous loop restores replication well before trace end.
  config.poolctl.rebalance_budget_pages = 32768;
  config.faults.seed = kSeed;
  config.faults.Add(PoolCrashWindow(SimTime::Zero() + SimDuration::Seconds(45),
                                    SimTime::Zero() + SimDuration::Seconds(46), 1.0,
                                    /*pool_node=*/1,
                                    /*restart_after=*/SimDuration::Seconds(30)));
  Cluster cluster(config);
  if (!cluster.DeployTable4Functions().ok()) {
    return {};
  }
  if (!bench::RunCluster(cluster, SweepWorkload(), shards).ok()) {
    return {};
  }
  return Collect(cluster);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

std::string UtcNow() {
  char buf[32];
  const std::time_t t = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&t, &tm_utc);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

struct SweepPoint {
  uint32_t nodes;
  uint32_t replication;
  Dispatch dispatch;
};

int RunBench(bench::BenchEnv& env) {
  // Sharded execution of each run; the report is byte-identical at any value
  // (zero-lookahead RunSharded == Run), so this doubles as a determinism
  // check over the sharded core.
  const uint32_t shards =
      static_cast<uint32_t>(std::atoi(env.ExtraValue("--shards=", "1").c_str()));
  std::cout << "=== Pool control plane: nodes x replication x dispatch ===\n";

  std::vector<SweepPoint> points;
  for (const uint32_t nodes : {2u, 4u, 8u}) {
    for (const uint32_t replication : {1u, 2u}) {
      for (const Dispatch dispatch : {Dispatch::kLeastLoaded, Dispatch::kTemplateLocality}) {
        points.push_back({nodes, replication, dispatch});
      }
    }
  }
  const std::vector<RunResult> sweep =
      bench::ParallelSweep(points.size(), env.jobs,
                           [&](size_t i) {
                             return RunScale(points[i].nodes, points[i].replication,
                                             points[i].dispatch, shards);
                           });

  Table table({"Nodes", "Repl", "Dispatch", "Fetch MiB", "Fetch ops", "Coalesced",
               "Hit rate", "Attach p50 ms", "Attach p99 ms", "E2E p99 ms"});
  for (size_t i = 0; i < points.size(); ++i) {
    const RunResult& r = sweep[i];
    if (!r.ok) {
      std::cerr << "sweep run " << i << " failed\n";
      return 1;
    }
    const uint64_t attaches = r.lease_hits + r.lease_misses;
    table.AddRow({std::to_string(points[i].nodes), std::to_string(points[i].replication),
                  DispatchName(points[i].dispatch),
                  Table::Num(static_cast<double>(r.fetch_pages) / kPagesPerMiB, 1),
                  std::to_string(r.fetch_ops), std::to_string(r.coalesced),
                  Table::Num(attaches == 0 ? 0.0
                                           : static_cast<double>(r.lease_hits) /
                                                 static_cast<double>(attaches),
                             3),
                  Table::Num(r.attach_p50_ms, 3), Table::Num(r.attach_p99_ms, 3),
                  Table::Num(r.e2e_p99_ms, 2)});
  }
  table.Print(std::cout);
  std::cout << "Replication changes placement only — lease misses read the primary, so "
               "r=1 and r=2 rows match in steady state.\n\n";

  // The acceptance check: at >= 4 nodes template-locality must pull fewer
  // remote pages AND land a p99 attach no worse than least-loaded.
  bool verdict_ok = true;
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i].dispatch != Dispatch::kLeastLoaded || points[i].nodes < 4) {
      continue;
    }
    // The matching locality run is the next point (same nodes/replication).
    const RunResult& least = sweep[i];
    const RunResult& local = sweep[i + 1];
    const bool fewer_bytes = local.fetch_pages < least.fetch_pages;
    const bool p99_no_worse = local.attach_p99_ms <= least.attach_p99_ms;
    std::cout << "n=" << points[i].nodes << " r=" << points[i].replication
              << ": locality fetches " << local.fetch_pages << " pages vs "
              << least.fetch_pages << " (" << (fewer_bytes ? "fewer" : "NOT FEWER")
              << "), attach p99 " << Table::Num(local.attach_p99_ms, 3) << " ms vs "
              << Table::Num(least.attach_p99_ms, 3) << " ms ("
              << (p99_no_worse ? "no worse" : "WORSE") << ")\n";
    verdict_ok = verdict_ok && fewer_bytes && p99_no_worse;
  }
  if (!verdict_ok) {
    std::cerr << "FAIL: template-locality did not beat least-loaded at >= 4 nodes\n";
    return 1;
  }
  std::cout << "\n=== Pool-node crash at t=45s (restart +30s), locality, 4 nodes ===\n";

  struct ChaosPoint {
    uint32_t replication;
    bool continuous;
  };
  const std::vector<ChaosPoint> chaos_points = {{1, false}, {2, false}, {2, true}};
  const std::vector<RunResult> chaos = bench::ParallelSweep(
      chaos_points.size(), env.jobs, [&](size_t i) {
        return RunChaos(chaos_points[i].replication, chaos_points[i].continuous, shards);
      });

  Table crash({"Repl", "Membership", "Accepted", "Completed", "Promotions", "Revoked",
               "Reseeded", "Deaths", "Rejoins", "UnderRepl", "Fetch MiB",
               "Attach p99 ms"});
  for (size_t i = 0; i < chaos.size(); ++i) {
    const RunResult& r = chaos[i];
    if (!r.ok) {
      std::cerr << "chaos run " << i << " failed\n";
      return 1;
    }
    crash.AddRow({std::to_string(chaos_points[i].replication),
                  chaos_points[i].continuous ? "continuous" : "static",
                  std::to_string(r.accepted), std::to_string(r.completed),
                  std::to_string(r.promotions), std::to_string(r.revoked),
                  std::to_string(r.reseeded), std::to_string(r.deaths),
                  std::to_string(r.rejoins), std::to_string(r.under_replicated),
                  Table::Num(static_cast<double>(r.fetch_pages) / kPagesPerMiB, 1),
                  Table::Num(r.attach_p99_ms, 3)});
  }
  crash.Print(std::cout);

  // Zero-loss acceptance: with replication 2, the crash must promote replicas
  // (leases intact) and lose no accepted invocation — whether the control
  // plane knows instantly (static) or has to detect the death via gossip
  // (continuous).
  for (size_t i = 1; i < chaos.size(); ++i) {
    const RunResult& r2 = chaos[i];
    const char* mode = chaos_points[i].continuous ? "continuous" : "static";
    if (r2.accepted != r2.completed) {
      std::cerr << "FAIL: replication-2 " << mode << " crash lost invocations: accepted "
                << r2.accepted << " completed " << r2.completed << "\n";
      return 1;
    }
    if (r2.revoked != 0) {
      std::cerr << "FAIL: replication-2 " << mode << " crash revoked " << r2.revoked
                << " lease(s)\n";
      return 1;
    }
  }
  const RunResult& rc2 = chaos[2];
  if (rc2.deaths == 0 || rc2.rejoins == 0) {
    std::cerr << "FAIL: continuous chaos never declared/rejoined the crashed node "
              << "(deaths=" << rc2.deaths << " rejoins=" << rc2.rejoins << ")\n";
    return 1;
  }
  if (rc2.under_replicated != 0) {
    std::cerr << "FAIL: continuous chaos ended with " << rc2.under_replicated
              << " under-replicated shard(s)\n";
    return 1;
  }
  std::cout << "Replication 2 rides out the crash on promotions alone (0 revocations, "
               "0 lost) under both static and gossip membership; replication 1 pays "
               "revocations + reseeds.\n";

  const std::string json_path = env.ExtraValue("--bench-json=");
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::app);
    if (!out) {
      std::cerr << "failed to append record to " << json_path << "\n";
      return 1;
    }
    out << "{\"utc\":\"" << UtcNow() << "\",\"label\":\""
        << JsonEscape(env.ExtraValue("--bench-label=")) << "\",\"host\":"
        << bench::HostJson(env.jobs) << ",\"benchmarks\":{";
    bool first = true;
    for (size_t i = 0; i < points.size(); ++i) {
      if (points[i].nodes != 4) {
        continue;  // the trajectory tracks the headline 4-node rows
      }
      const RunResult& r = sweep[i];
      if (!first) {
        out << ",";
      }
      first = false;
      out << "\"poolmgr_scale/"
          << (points[i].dispatch == Dispatch::kTemplateLocality ? "locality"
                                                                : "least_loaded")
          << "_n" << points[i].nodes << "_r" << points[i].replication
          << "\":{\"real_ns\":" << static_cast<uint64_t>(r.attach_p99_ms * 1e6)
          << ",\"fetch_pages\":" << r.fetch_pages << ",\"lease_hits\":" << r.lease_hits
          << ",\"lease_misses\":" << r.lease_misses << "}";
    }
    for (size_t i = 0; i < chaos.size(); ++i) {
      out << ",\"poolmgr_scale/chaos_r" << chaos_points[i].replication
          << (chaos_points[i].continuous ? "_continuous" : "")
          << "\":{\"accepted\":" << chaos[i].accepted
          << ",\"completed\":" << chaos[i].completed
          << ",\"promotions\":" << chaos[i].promotions
          << ",\"revoked\":" << chaos[i].revoked << ",\"reseeded\":" << chaos[i].reseeded;
      if (chaos_points[i].continuous) {
        out << ",\"deaths\":" << chaos[i].deaths << ",\"rejoins\":" << chaos[i].rejoins
            << ",\"under_replicated\":" << chaos[i].under_replicated;
      }
      out << "}";
    }
    out << "}}\n";
    if (!out) {
      std::cerr << "failed to append record to " << json_path << "\n";
      return 1;
    }
    std::cout << "appended record to " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  trenv::bench::BenchEnv env(argc, argv,
                             {{"--bench-json=", "--bench-json=<file>"},
                              {"--bench-label=", "--bench-label=<text>"},
                              {"--shards=", "--shards=<n>"}});
  const int rc = trenv::RunBench(env);
  env.Finish();
  return rc;
}
