// Chaos bench: availability and recovery latency under injected failures.
//
// For each seed, a 4-node TrEnv rack runs a Poisson workload while the
// FaultSchedule crashes one node mid-burst (with restart), degrades a CXL
// MHD port, and squeezes the keep-alive memory cap. Two failover modes are
// compared:
//   trenv-failover  — redeploy penalty 0: the crashed node's work restarts
//                     from the shared pool snapshot on a survivor
//   cold-redeploy   — conventional per-node deployment: every recovered
//                     invocation pays a snapshot pull before restarting
// A separate single-node section runs a TrEnv-RDMA testbed under a 30% link
// flap + 5% page corruption schedule to report the retry/backoff cost on
// the fetch path.
//
// Flags:
//   --seeds=a,b,c       comma-separated schedule seeds (default: 42)
//   --jobs=N            sweep threads; the report is byte-identical at any N
//   --shards=N          run racks through RunSharded (byte-identical report)
//   --bench-json=PATH   append a JSON-lines record to the BENCH trajectory
//   --bench-label=TEXT  label stored in the JSON record
//
// Everything printed to stdout is derived from virtual time and the seeds,
// so for a fixed --seeds list the report is bitwise-stable across runs and
// across --jobs values. Wall-clock (utc) appears only in the JSON file.
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_schedule.h"
#include "src/platform/cluster.h"

namespace trenv {
namespace {

struct ChaosFlags {
  std::vector<uint64_t> seeds = {42};
  unsigned jobs = ThreadPool::DefaultThreads();
  // Rack runs route through RunSharded when > 1; the fault injector forces
  // an effective shard count of 1, so the report must stay byte-identical —
  // which makes this flag a determinism probe for the degraded path.
  uint32_t shards = 1;
  std::string json_path;
  std::string label;
};

ChaosFlags ParseFlags(int argc, char** argv) {
  ChaosFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--seeds=", 0) == 0) {
      flags.seeds.clear();
      std::stringstream list{std::string(arg.substr(8))};
      std::string item;
      while (std::getline(list, item, ',')) {
        if (!item.empty()) {
          flags.seeds.push_back(std::strtoull(item.c_str(), nullptr, 10));
        }
      }
      if (flags.seeds.empty()) {
        std::cerr << "invalid --seeds value: " << arg << "\n";
        std::exit(2);
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      const int parsed = std::atoi(std::string(arg.substr(7)).c_str());
      if (parsed < 1) {
        std::cerr << "invalid --jobs value: " << arg << " (want an integer >= 1)\n";
        std::exit(2);
      }
      flags.jobs = static_cast<unsigned>(parsed);
    } else if (arg.rfind("--shards=", 0) == 0) {
      const int parsed = std::atoi(std::string(arg.substr(9)).c_str());
      if (parsed < 1) {
        std::cerr << "invalid --shards value: " << arg << " (want an integer >= 1)\n";
        std::exit(2);
      }
      flags.shards = static_cast<uint32_t>(parsed);
    } else if (arg.rfind("--bench-json=", 0) == 0) {
      flags.json_path = std::string(arg.substr(13));
    } else if (arg.rfind("--bench-label=", 0) == 0) {
      flags.label = std::string(arg.substr(14));
    } else {
      std::cerr << "unknown flag: " << arg
                << " (supported: --seeds=a,b,c --jobs=<n> --shards=<n> "
                   "--bench-json=<file> --bench-label=<text>)\n";
      std::exit(2);
    }
  }
  return flags;
}

// The rack-level campaign every (seed, mode) run faces: one node dies a
// minute in and comes back 30 s later; the MHD port it shared degrades for
// the following minute; a memory-pressure window squeezes keep-alive caches.
FaultSchedule RackCampaign(uint64_t seed) {
  FaultSchedule faults;
  faults.seed = seed;
  faults.Add(NodeCrashWindow(SimTime::Zero() + SimDuration::Seconds(60),
                             SimTime::Zero() + SimDuration::Seconds(90), 1.0, kAnyTarget,
                             /*restart_after=*/SimDuration::Seconds(30)));
  faults.Add(LinkFaultWindow(FaultDomain::kCxlPortDegrade,
                             SimTime::Zero() + SimDuration::Seconds(90),
                             SimTime::Zero() + SimDuration::Seconds(150), 1.0,
                             /*severity=*/2.0));
  faults.Add(PoolPressureWindow(SimTime::Zero() + SimDuration::Seconds(100),
                                SimTime::Zero() + SimDuration::Seconds(140),
                                /*cap_scale=*/0.5));
  return faults;
}

Schedule RackWorkload(uint64_t seed) {
  Rng rng(seed ^ 0xC4A05);
  return MakePoissonWorkload({"JS", "DH", "IR", "CR"}, 8.0, SimDuration::Minutes(3), 0.4,
                             rng);
}

struct RackResult {
  bool ok = false;
  uint64_t accepted = 0;
  uint64_t completed = 0;
  uint64_t crashes = 0;
  uint64_t restarts = 0;
  uint64_t failovers = 0;
  uint64_t injections = 0;
  double recovery_p50_ms = 0;
  double recovery_p99_ms = 0;
  double e2e_mean_ms = 0;
  double e2e_p99_ms = 0;
};

RackResult RunRack(uint64_t seed, bool trenv_failover, uint32_t shards) {
  RackResult result;
  ClusterConfig config;
  config.nodes = 4;
  config.dispatch = ClusterConfig::Dispatch::kRoundRobin;
  config.faults = RackCampaign(seed);
  // TrEnv restores the crashed node's work from the shared pool snapshot;
  // the conventional baseline re-pulls a full snapshot onto the survivor.
  config.failover.redeploy_penalty =
      trenv_failover ? SimDuration::Zero() : SimDuration::Millis(2500);
  Cluster cluster(config);
  if (!cluster.DeployTable4Functions().ok()) {
    return result;
  }
  const Status run = bench::RunCluster(cluster, RackWorkload(seed), shards);
  if (!run.ok()) {
    std::cerr << "chaos run failed: " << run << "\n";
    return result;
  }
  const FunctionMetrics agg = cluster.AggregateMetrics();
  const FaultInjector& injector = *cluster.fault_injector();
  result.ok = true;
  result.accepted = cluster.accepted_invocations();
  result.completed = agg.invocations;
  result.crashes = injector.crashes();
  result.restarts = injector.restarts();
  result.failovers = injector.failovers();
  result.injections = injector.injection_log().size();
  if (injector.recovery_ms().count() > 0) {
    result.recovery_p50_ms = injector.recovery_ms().Median();
    result.recovery_p99_ms = injector.recovery_ms().P99();
  }
  result.e2e_mean_ms = agg.e2e_ms.Mean();
  result.e2e_p99_ms = agg.e2e_ms.P99();
  return result;
}

struct RdmaResult {
  bool ok = false;
  uint64_t injections = 0;
  uint64_t retries = 0;
  uint64_t corrupt = 0;
  uint64_t exhausted = 0;
  double e2e_mean_ms = 0;
  double e2e_p99_ms = 0;
};

// Fetch-path section: a single TrEnv-RDMA node where the remote link flaps
// on 30% of fetch attempts and 5% of payloads arrive corrupted (caught by
// the dedup content hash and refetched).
RdmaResult RunRdmaDegraded(uint64_t seed, bool faulty) {
  RdmaResult result;
  FaultSchedule faults;
  faults.seed = seed;
  if (faulty) {
    faults.Add(LinkFaultWindow(FaultDomain::kRdmaFlap, SimTime::Zero(), SimTime::Max(),
                               /*probability=*/0.30));
    faults.Add(LinkFaultWindow(FaultDomain::kPageCorruption, SimTime::Zero(), SimTime::Max(),
                               /*probability=*/0.05));
  }
  FaultInjector injector(faults);
  Testbed bed(SystemKind::kTrEnvRdma);
  bed.BindFaultInjector(&injector);
  if (!bed.DeployTable4Functions().ok()) {
    return result;
  }
  Rng rng(seed ^ 0xD31A);
  Schedule schedule =
      MakePoissonWorkload({"JS", "DH", "IR"}, 6.0, SimDuration::Minutes(2), 0.3, rng);
  if (!bed.platform().Run(schedule).ok()) {
    return result;
  }
  const FunctionMetrics agg = bed.platform().metrics().Aggregate();
  result.ok = true;
  result.injections = injector.injection_log().size();
  result.retries = injector.retries();
  result.corrupt = injector.corrupt_fetches();
  result.exhausted = injector.exhausted_fetches();
  result.e2e_mean_ms = agg.e2e_ms.Mean();
  result.e2e_p99_ms = agg.e2e_ms.P99();
  return result;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

std::string UtcNow() {
  char buf[32];
  const std::time_t t = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&t, &tm_utc);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

// One (seed, mode) sweep slot: the two rack modes plus the two fetch-path
// runs, all independent simulations.
struct SeedResults {
  RackResult failover;
  RackResult redeploy;
  RdmaResult rdma_clean;
  RdmaResult rdma_faulty;
};

int RunBench(const ChaosFlags& flags) {
  std::cout << "=== Chaos recovery: TrEnv failover vs cold re-deploy ===\n";

  const std::vector<SeedResults> results =
      bench::ParallelSweep(flags.seeds.size(), flags.jobs, [&](size_t i) {
        SeedResults r;
        r.failover = RunRack(flags.seeds[i], /*trenv_failover=*/true, flags.shards);
        r.redeploy = RunRack(flags.seeds[i], /*trenv_failover=*/false, flags.shards);
        r.rdma_clean = RunRdmaDegraded(flags.seeds[i], /*faulty=*/false);
        r.rdma_faulty = RunRdmaDegraded(flags.seeds[i], /*faulty=*/true);
        return r;
      });

  Table rack({"Seed", "Mode", "Accepted", "Completed", "Crashes", "Failovers",
              "Recovery p50 ms", "Recovery p99 ms", "E2E mean ms", "E2E p99 ms"});
  for (size_t i = 0; i < flags.seeds.size(); ++i) {
    for (const bool trenv : {true, false}) {
      const RackResult& r = trenv ? results[i].failover : results[i].redeploy;
      if (!r.ok) {
        std::cerr << "rack run failed for seed " << flags.seeds[i] << "\n";
        return 1;
      }
      if (r.accepted != r.completed) {
        std::cerr << "seed " << flags.seeds[i] << " lost invocations: accepted "
                  << r.accepted << " completed " << r.completed << "\n";
        return 1;
      }
      rack.AddRow({std::to_string(flags.seeds[i]),
                   trenv ? "trenv-failover" : "cold-redeploy", std::to_string(r.accepted),
                   std::to_string(r.completed), std::to_string(r.crashes),
                   std::to_string(r.failovers), Table::Num(r.recovery_p50_ms, 2),
                   Table::Num(r.recovery_p99_ms, 2), Table::Num(r.e2e_mean_ms, 2),
                   Table::Num(r.e2e_p99_ms, 2)});
    }
  }
  rack.Print(std::cout);
  std::cout << "Zero accepted invocations lost in any run; recovery latency is "
               "detection + re-dispatch (+ snapshot pull for cold-redeploy).\n\n";

  std::cout << "=== Fetch path under 30% RDMA flap + 5% corruption ===\n";
  Table rdma({"Seed", "Link", "Injections", "Retries", "Corrupt", "Exhausted",
              "E2E mean ms", "E2E p99 ms"});
  for (size_t i = 0; i < flags.seeds.size(); ++i) {
    for (const bool faulty : {false, true}) {
      const RdmaResult& r = faulty ? results[i].rdma_faulty : results[i].rdma_clean;
      if (!r.ok) {
        std::cerr << "rdma run failed for seed " << flags.seeds[i] << "\n";
        return 1;
      }
      rdma.AddRow({std::to_string(flags.seeds[i]), faulty ? "degraded" : "clean",
                   std::to_string(r.injections), std::to_string(r.retries),
                   std::to_string(r.corrupt), std::to_string(r.exhausted),
                   Table::Num(r.e2e_mean_ms, 2), Table::Num(r.e2e_p99_ms, 2)});
    }
  }
  rdma.Print(std::cout);
  std::cout << "Retries are bounded by the retry policy (capped exponential backoff "
               "+ deadline); corruption is caught by the dedup content hash.\n";

  if (!flags.json_path.empty()) {
    std::ofstream out(flags.json_path, std::ios::app);
    if (!out) {
      std::cerr << "failed to append record to " << flags.json_path << "\n";
      return 1;
    }
    out << "{\"utc\":\"" << UtcNow() << "\",\"label\":\"" << JsonEscape(flags.label)
        << "\",\"host\":" << bench::HostJson(flags.jobs) << ",\"benchmarks\":{";
    bool first = true;
    for (size_t i = 0; i < flags.seeds.size(); ++i) {
      for (const bool trenv : {true, false}) {
        const RackResult& r = trenv ? results[i].failover : results[i].redeploy;
        if (!first) {
          out << ",";
        }
        first = false;
        out << "\"chaos/seed" << flags.seeds[i] << "/"
            << (trenv ? "trenv_failover" : "cold_redeploy")
            << "\":{\"accepted\":" << r.accepted << ",\"completed\":" << r.completed
            << ",\"failovers\":" << r.failovers
            << ",\"recovery_p50_ms\":" << r.recovery_p50_ms
            << ",\"recovery_p99_ms\":" << r.recovery_p99_ms
            << ",\"e2e_p99_ms\":" << r.e2e_p99_ms << "}";
      }
      out << ",\"chaos/seed" << flags.seeds[i]
          << "/rdma_degraded\":{\"injections\":" << results[i].rdma_faulty.injections
          << ",\"retries\":" << results[i].rdma_faulty.retries
          << ",\"corrupt\":" << results[i].rdma_faulty.corrupt
          << ",\"e2e_p99_ms\":" << results[i].rdma_faulty.e2e_p99_ms << "}";
    }
    out << "}}\n";
    if (!out) {
      std::cerr << "failed to append record to " << flags.json_path << "\n";
      return 1;
    }
    std::cout << "appended record to " << flags.json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  const trenv::ChaosFlags flags = trenv::ParseFlags(argc, argv);
  return trenv::RunBench(flags);
}
