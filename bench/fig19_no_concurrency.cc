// Figure 19: normalized E2E latency without concurrency; the hatched region
// is startup time. One cold-path invocation per function per system; the
// five system runs are independent and execute as one ParallelSweep.
#include <iostream>

#include "bench/bench_util.h"

namespace trenv {
namespace {

const SystemKind kSystems[] = {SystemKind::kCriu, SystemKind::kReapPlus,
                               SystemKind::kFaasnapPlus, SystemKind::kTrEnvCxl,
                               SystemKind::kTrEnvRdma};

void Run(bench::BenchEnv& env) {
  PrintBanner(std::cout,
              "Figure 19: E2E latency without concurrency (startup | exec, normalized to CRIU)");
  // Per system: function -> (startup_ms, e2e_ms).
  using SystemResult = std::map<std::string, std::pair<double, double>>;
  std::vector<SystemResult> per_system =
      bench::ParallelSweep(std::size(kSystems), env.jobs, [&](size_t i) {
        const SystemKind kind = kSystems[i];
        SystemResult measured;
        Testbed bed(kind);
        if (!bed.DeployTable4Functions().ok()) {
          return measured;
        }
        // Sequential, spaced past keep-alive so every start is a non-warm start;
        // precede each with a decoy invocation of another function so TrEnv has
        // a sandbox to repurpose (its steady state).
        SimTime t = SimTime::Zero();
        for (const auto& fn : bench::Table4Names()) {
          const std::string decoy = fn == "DH" ? "JS" : "DH";
          (void)bed.platform().Submit(t, decoy);
          t += SimDuration::Minutes(11);
          (void)bed.platform().Submit(t, fn);
          t += SimDuration::Minutes(11);
          bed.platform().RunToCompletion();
        }
        for (const auto& fn : bench::Table4Names()) {
          const auto& m = bed.platform().metrics().per_function().at(fn);
          // Min picks the steady-state (non-decoy) run for every system.
          measured[fn] = {m.startup_ms.Min(), m.e2e_ms.Min()};
        }
        return measured;
      });

  // function -> system -> (startup_ms, e2e_ms)
  std::map<std::string, std::map<std::string, std::pair<double, double>>> results;
  for (size_t i = 0; i < std::size(kSystems); ++i) {
    for (const auto& [fn, pair] : per_system[i]) {
      results[fn][SystemName(kSystems[i])] = pair;
    }
  }

  Table table({"Func", "System", "Startup (ms)", "Exec (ms)", "E2E (ms)", "E2E / CRIU"});
  for (const auto& fn : bench::Table4Names()) {
    const double criu_e2e = results[fn]["CRIU"].second;
    for (SystemKind kind : kSystems) {
      const auto& [startup, e2e] = results[fn][SystemName(kind)];
      table.AddRow({fn, SystemName(kind), Table::Num(startup), Table::Num(e2e - startup),
                    Table::Num(e2e), Table::Num(e2e / criu_e2e, 3)});
    }
  }
  table.Print(std::cout);
  std::cout << "Paper reference: without concurrency the gap narrows; TrEnv still has the "
               "shortest startup, while lazy systems defer cost into execution.\n";
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  trenv::bench::BenchEnv env(argc, argv);
  trenv::Run(env);
  env.Finish();
  return 0;
}
