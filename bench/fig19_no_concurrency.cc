// Figure 19: normalized E2E latency without concurrency; the hatched region
// is startup time. One cold-path invocation per function per system.
#include <iostream>

#include "bench/bench_util.h"

namespace trenv {
namespace {

void Run() {
  PrintBanner(std::cout,
              "Figure 19: E2E latency without concurrency (startup | exec, normalized to CRIU)");
  const SystemKind systems[] = {SystemKind::kCriu, SystemKind::kReapPlus,
                                SystemKind::kFaasnapPlus, SystemKind::kTrEnvCxl,
                                SystemKind::kTrEnvRdma};
  // function -> system -> (startup_ms, e2e_ms)
  std::map<std::string, std::map<std::string, std::pair<double, double>>> results;
  for (SystemKind kind : systems) {
    Testbed bed(kind);
    if (!bed.DeployTable4Functions().ok()) {
      continue;
    }
    // Sequential, spaced past keep-alive so every start is a non-warm start;
    // precede each with a decoy invocation of another function so TrEnv has
    // a sandbox to repurpose (its steady state).
    SimTime t = SimTime::Zero();
    for (const auto& fn : bench::Table4Names()) {
      const std::string decoy = fn == "DH" ? "JS" : "DH";
      (void)bed.platform().Submit(t, decoy);
      t += SimDuration::Minutes(11);
      (void)bed.platform().Submit(t, fn);
      t += SimDuration::Minutes(11);
      bed.platform().RunToCompletion();
    }
    for (const auto& fn : bench::Table4Names()) {
      const auto& m = bed.platform().metrics().per_function().at(fn);
      // Min picks the steady-state (non-decoy) run for every system.
      results[fn][SystemName(kind)] = {m.startup_ms.Min(), m.e2e_ms.Min()};
    }
  }

  Table table({"Func", "System", "Startup (ms)", "Exec (ms)", "E2E (ms)", "E2E / CRIU"});
  for (const auto& fn : bench::Table4Names()) {
    const double criu_e2e = results[fn]["CRIU"].second;
    for (SystemKind kind : systems) {
      const auto& [startup, e2e] = results[fn][SystemName(kind)];
      table.AddRow({fn, SystemName(kind), Table::Num(startup), Table::Num(e2e - startup),
                    Table::Num(e2e), Table::Num(e2e / criu_e2e, 3)});
    }
  }
  table.Print(std::cout);
  std::cout << "Paper reference: without concurrency the gap narrows; TrEnv still has the "
               "shortest startup, while lazy systems defer cost into execution.\n";
}

}  // namespace
}  // namespace trenv

int main() {
  trenv::Run();
  return 0;
}
