// Sharded discrete-event core scale sweep: shards x nodes x trace size.
//
// One rack, one fixed-seed Poisson trace pulled lazily from an ArrivalStream
// (the trace is never materialized — peak RSS stays flat as --invocations
// grows), executed once per requested shard count through
// Cluster::RunSharded. The bench is both a benchmark and a determinism gate:
//
//   stdout  — ONE canonical run report (full-precision fingerprint of every
//             externally observable quantity) plus a verdict line per shard
//             count. Byte-identical at any --shards/--jobs setting; CI diffs
//             the bytes of a --shards=1 run against a --shards=4 run.
//   stderr  — wall-clock, speedup vs the slowest=1-shard run, epoch count,
//             barrier overhead, and ru_maxrss. Host-dependent; never diffed.
//
// Any fingerprint mismatch between shard counts exits 1. The wall-clock
// speedup is reported always and enforced only when --require-speedup=X is
// given AND the machine has at least as many cores as shards (a 1-core CI
// container cannot demonstrate parallel speedup, only determinism).
//
// Flags:
//   --nodes=N            rack size (default 8)
//   --shards=a,b,c       shard counts to sweep (default 1,2,4)
//   --invocations=N      trace length (default 200000)
//   --lookahead-ms=X     conservative-lookahead window (default 20;
//                        0 = one barrier per arrival, exactly Run())
//   --require-speedup=X  fail unless the largest shard count achieves X×
//                        (skipped with a notice on machines with fewer cores)
//   --bench-json=PATH    append a JSON-lines record (with host metadata)
//   --bench-label=TEXT   label stored in the JSON record
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <ctime>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/platform/cluster.h"
#include "src/workload/arrival_stream.h"

namespace trenv {
namespace {

constexpr uint64_t kSeed = 42;
constexpr double kRatePerSec = 400.0;

std::string JsonEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

std::string UtcNow() {
  char buf[32];
  const std::time_t t = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&t, &tm_utc);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

std::vector<uint32_t> ParseCsv(const std::string& csv) {
  std::vector<uint32_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int v = std::atoi(item.c_str());
    if (v >= 1) {
      out.push_back(static_cast<uint32_t>(v));
    }
  }
  return out;
}

void FingerprintHistogram(std::ostringstream& out, const char* label, const Histogram& h) {
  out << ' ' << label << ":n=" << h.count();
  if (!h.empty()) {
    out << ",min=" << h.Min() << ",max=" << h.Max() << ",mean=" << h.Mean()
        << ",sd=" << h.Stddev() << ",p50=" << h.Median() << ",p99=" << h.P99();
  }
}

// Everything a run can observably produce, at full precision: any divergence
// in event order, placement, or RNG consumption shows up as a byte change.
std::string Fingerprint(Cluster& cluster) {
  std::ostringstream out;
  out << std::setprecision(17);
  out << "accepted=" << cluster.accepted_invocations() << '\n';
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    ServerlessPlatform& node = cluster.node(i);
    out << "node " << i << " failed=" << node.failed_invocations()
        << " frames=" << node.frames().used_bytes()
        << " frames_peak=" << node.frames().peak_used_bytes()
        << " mem_peak=" << node.metrics().peak_memory_bytes()
        << " fetch_cpu=" << node.metrics().fetch_cpu_seconds() << '\n';
    for (const auto& [fn, m] : node.metrics().per_function()) {
      out << "  fn " << fn << " inv=" << m.invocations << " warm=" << m.warm_starts
          << " cold=" << m.cold_starts << " rep=" << m.repurposed_starts;
      FingerprintHistogram(out, "e2e", m.e2e_ms);
      FingerprintHistogram(out, "startup", m.startup_ms);
      out << '\n';
    }
  }
  out << "pool=" << cluster.PoolBytes() << " dram=" << cluster.NodeDramBytes() << '\n';
  for (const auto& [name, counter] : cluster.registry().counters()) {
    out << "ctr " << name << '=' << counter->value() << '\n';
  }
  return out.str();
}

struct RunOutcome {
  bool ok = false;
  std::string fingerprint;
  double wall_s = 0;
  double barrier_s = 0;
  uint64_t epochs = 0;
  uint32_t effective_shards = 0;
  uint64_t accepted = 0;
};

RunOutcome RunOne(uint32_t nodes, uint32_t shards, uint64_t invocations, double lookahead_ms) {
  ClusterConfig config;
  config.nodes = nodes;
  // A short TTL keeps the restore path (the expensive shared-pool work each
  // shard parallelizes) hot instead of devolving into all-warm hits.
  config.node_config.keep_alive_ttl = SimDuration::Seconds(2);
  Cluster cluster(config);
  RunOutcome outcome;
  if (!cluster.DeployTable4Functions().ok()) {
    std::cerr << "deploy failed\n";
    return outcome;
  }
  // Duration chosen so the Poisson stream yields ~`invocations` arrivals;
  // same seed at every shard count => same trace, draw for draw.
  const SimDuration duration =
      SimDuration::FromSecondsF(static_cast<double>(invocations) / kRatePerSec);
  Rng rng(kSeed);
  PoissonArrivalStream stream({"JS", "DH", "IR", "CR", "PR"}, kRatePerSec, duration, 0.7,
                              &rng);
  ShardedRunOptions options;
  options.shards = shards;
  options.lookahead = SimDuration::FromMicrosF(lookahead_ms * 1000.0);
  const auto start = std::chrono::steady_clock::now();
  if (!cluster.RunSharded(stream, options).ok()) {
    std::cerr << "run failed at shards=" << shards << "\n";
    return outcome;
  }
  outcome.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                       .count();
  outcome.ok = true;
  outcome.fingerprint = Fingerprint(cluster);
  outcome.barrier_s = cluster.sharded_barrier_wait_seconds();
  outcome.epochs = cluster.sharded_epochs();
  outcome.effective_shards = cluster.sharded_effective_shards();
  outcome.accepted = cluster.accepted_invocations();
  return outcome;
}

uint64_t MaxRssKb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<uint64_t>(usage.ru_maxrss);
}

int RunBench(bench::BenchEnv& env) {
  const uint32_t nodes =
      static_cast<uint32_t>(std::atoi(env.ExtraValue("--nodes=", "8").c_str()));
  const std::vector<uint32_t> shard_counts = ParseCsv(env.ExtraValue("--shards=", "1,2,4"));
  const uint64_t invocations =
      static_cast<uint64_t>(std::atoll(env.ExtraValue("--invocations=", "200000").c_str()));
  const double lookahead_ms = std::atof(env.ExtraValue("--lookahead-ms=", "20").c_str());
  const double require_speedup = std::atof(env.ExtraValue("--require-speedup=", "0").c_str());
  if (nodes < 1 || shard_counts.empty() || invocations < 1) {
    std::cerr << "invalid --nodes/--shards/--invocations\n";
    return 2;
  }

  std::cout << "=== Sharded core: " << nodes << " nodes, ~" << invocations
            << " invocations, lookahead " << lookahead_ms << " ms ===\n";

  std::vector<RunOutcome> runs;
  for (const uint32_t shards : shard_counts) {
    const uint64_t rss_before = MaxRssKb();
    runs.push_back(RunOne(nodes, shards, invocations, lookahead_ms));
    const RunOutcome& r = runs.back();
    if (!r.ok) {
      return 1;
    }
    std::cerr << "shards=" << shards << " (effective " << r.effective_shards << "): "
              << std::fixed << std::setprecision(3) << r.wall_s << " s wall, "
              << r.epochs << " epochs, " << r.barrier_s << " s barrier wait, ru_maxrss "
              << MaxRssKb() << " KB (was " << rss_before << " KB)\n";
  }

  // The canonical report: one copy of the fingerprint (identical across the
  // sweep or we fail). Stdout must not mention the requested shard counts —
  // CI byte-diffs it between separate --shards=1 and --shards=4 processes —
  // so the per-shard verdicts go to stderr.
  std::cout << runs.front().fingerprint;
  bool identical = true;
  for (size_t i = 0; i < runs.size(); ++i) {
    const bool match = runs[i].fingerprint == runs.front().fingerprint;
    identical = identical && match;
    std::cerr << "shards=" << shard_counts[i] << " accepted=" << runs[i].accepted
              << " fingerprint=" << (match ? "identical" : "DIVERGED") << '\n';
  }
  if (!identical) {
    std::cerr << "FAIL: sharded runs diverged — output must be byte-identical at any "
                 "--shards setting\n";
    return 1;
  }

  // Speedup relative to the 1-shard run (or the smallest swept count).
  const double base_wall = runs.front().wall_s;
  double best_speedup = 1.0;
  uint32_t best_shards = shard_counts.front();
  for (size_t i = 0; i < runs.size(); ++i) {
    const double speedup = runs[i].wall_s > 0 ? base_wall / runs[i].wall_s : 0.0;
    std::cerr << "speedup shards=" << shard_counts[i] << ": " << std::fixed
              << std::setprecision(2) << speedup << "x\n";
    if (speedup > best_speedup) {
      best_speedup = speedup;
      best_shards = shard_counts[i];
    }
  }
  const unsigned cores = std::thread::hardware_concurrency();
  if (require_speedup > 0) {
    const uint32_t max_shards = *std::max_element(shard_counts.begin(), shard_counts.end());
    if (cores < max_shards) {
      std::cerr << "NOTICE: --require-speedup skipped — " << cores
                << " core(s) cannot drive " << max_shards << " shards in parallel\n";
    } else if (best_speedup < require_speedup) {
      std::cerr << "FAIL: best speedup " << best_speedup << "x (shards=" << best_shards
                << ") below required " << require_speedup << "x\n";
      return 1;
    }
  }

  const std::string json_path = env.ExtraValue("--bench-json=");
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::app);
    if (!out) {
      std::cerr << "failed to append record to " << json_path << "\n";
      return 1;
    }
    out << "{\"utc\":\"" << UtcNow() << "\",\"label\":\""
        << JsonEscape(env.ExtraValue("--bench-label=")) << "\",\"host\":"
        << bench::HostJson(env.jobs) << ",\"benchmarks\":{";
    for (size_t i = 0; i < runs.size(); ++i) {
      if (i != 0) {
        out << ",";
      }
      out << "\"sharded_scale/shards_" << shard_counts[i]
          << "\":{\"real_ns\":" << static_cast<uint64_t>(runs[i].wall_s * 1e9)
          << ",\"epochs\":" << runs[i].epochs << ",\"barrier_ns\":"
          << static_cast<uint64_t>(runs[i].barrier_s * 1e9) << "}";
    }
    out << ",\"sharded_scale/best_speedup\":{\"value\":" << std::setprecision(4)
        << best_speedup << ",\"direction\":\"higher_is_better\"}";
    out << "}}\n";
    if (!out) {
      std::cerr << "failed to append record to " << json_path << "\n";
      return 1;
    }
    std::cerr << "appended record to " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  trenv::bench::BenchEnv env(argc, argv,
                             {{"--nodes=", "--nodes=<n>"},
                              {"--shards=", "--shards=a,b,c"},
                              {"--invocations=", "--invocations=<n>"},
                              {"--lookahead-ms=", "--lookahead-ms=<x>"},
                              {"--require-speedup=", "--require-speedup=<x>"},
                              {"--bench-json=", "--bench-json=<file>"},
                              {"--bench-label=", "--bench-label=<text>"}});
  const int rc = trenv::RunBench(env);
  env.Finish();
  return rc;
}
