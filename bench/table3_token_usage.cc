// Table 3: LLM token usage in representative agents, read back from the
// recorded traces.
#include <iostream>

#include "src/agents/agent_executor.h"
#include "src/common/table.h"

namespace trenv {
namespace {

void Run() {
  PrintBanner(std::cout, "Table 3: LLM token usage (from recorded traces)");
  Table table({"Agent", "Input Tok", "Output Tok", "LLM calls"});
  for (const auto& agent : Table2Agents()) {
    const AgentTrace trace = RecordTrace(agent, 42);
    const TraceSummary summary = SummarizeTrace(trace);
    table.AddRow({agent.name, std::to_string(summary.input_tokens),
                  std::to_string(summary.output_tokens), std::to_string(summary.llm_calls)});
  }
  table.Print(std::cout);
  std::cout << "Paper reference: 1690/8, 1557/530, 8640/2644, 43185/1494, 49398/2703, "
               "75121/2098.\n";
}

}  // namespace
}  // namespace trenv

int main() {
  trenv::Run();
  return 0;
}
