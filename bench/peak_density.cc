// Peak warm-environment density under an attach-latency SLO (the tentpole
// claim of the density tiering subsystem).
//
// One node, a diurnal W2 trace over a large synthetic function catalog
// (Table-4 profiles cloned under unique names, so every clone carries its
// own code/heap pages while libc/runtime pages dedup across the catalog).
// The node's soft memory cap models the DRAM a keep-alive pool may burn.
//
// Four systems, identical trace:
//   CRIU keep-alive    — full-RSS warm instances under the binary cap: the
//                        classic density wall (each warm env costs its RSS).
//   REAP+ keep-alive   — lazy working-set restores, same binary cap.
//   T-CXL keep-alive   — TrEnv instances (lazy, template-backed) but with
//                        the binary cap: over budget -> evict, cold start.
//                        This is the strongest non-density baseline and the
//                        one the >=5x gate compares against.
//   TrEnv density      — the tiering loop: idle instances demote
//                        DRAM-hot -> CXL-warm -> NAS-cold, freeing frames
//                        while keeping the environment warm; re-invocation
//                        re-maps the swap block (mapping metadata only, the
//                        attach latency the SLO gates) and the bulk fetch is
//                        billed to the next execution as demand faults.
//
// Acceptance (exit 1 on failure):
//   * density holds >= 5x the warm environments of the best binary-cap
//     baseline (peak simultaneously-parked instances),
//   * its warm-attach p99 stays under --slo-ms (15 ms default),
//   * it completes every accepted invocation, and
//   * byte-identical output at any --jobs.
//
// Flags (beyond the shared --jobs/--trace-out/--metrics-out):
//   --functions=N     synthetic catalog size (default 1024)
//   --minutes=M       trace duration (default 30)
//   --peak-rate=R     diurnal peak arrivals/s (default 24)
//   --slo-ms=S        warm-attach p99 SLO (default 15)
//   --overcommit=F    parked-footprint ceiling as a multiple of the cap
//   --bench-json=PATH append a JSON-lines record to the BENCH trajectory
//   --bench-label=TXT label stored in the JSON record
#include <cstdint>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"

namespace trenv {
namespace {

constexpr uint64_t kSeed = 42;
constexpr uint64_t kSoftCap = 2 * kGiB;  // DRAM budget for warm environments

struct Scale {
  uint32_t functions = 8192;
  double minutes = 30;
  // Clumped diurnal arrivals multiply the base rate ~5.8x (p=0.3, size 16),
  // so 8/s peak means ~45/s effective at the crest of the cycle.
  double peak_rate = 8.0;
  double slo_ms = 15.0;
  double overcommit = 16.0;
};

struct SystemSpec {
  const char* label;
  SystemKind kind;
  bool density;
};

const SystemSpec kSystems[] = {
    {"CRIU keep-alive", SystemKind::kCriu, false},
    {"REAP+ keep-alive", SystemKind::kReapPlus, false},
    {"T-CXL keep-alive", SystemKind::kTrEnvCxl, false},
    {"TrEnv density", SystemKind::kTrEnvCxl, true},
};
constexpr size_t kDensityRow = 3;

// Table-4 profiles cloned round-robin under unique tenant names: "f0017-JS"
// runs JS's layout/exec model and keeps its own private runtime state, but
// declares its image byte-identical to the base function (content_tag), the
// multi-tenant shape where the dedup store collapses the catalog's template
// pages to ten stored images.
std::vector<FunctionProfile> SyntheticCatalog(uint32_t count) {
  const std::vector<FunctionProfile> base = Table4Functions();
  std::vector<FunctionProfile> catalog;
  catalog.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FunctionProfile profile = base[i % base.size()];
    char tag[16];
    std::snprintf(tag, sizeof(tag), "f%04u-", i);
    profile.content_tag = profile.name;
    profile.name = tag + profile.name;
    catalog.push_back(std::move(profile));
  }
  return catalog;
}

Schedule DiurnalTrace(const std::vector<std::string>& names, const Scale& scale) {
  Rng rng(kSeed ^ 0xd377);
  DiurnalOptions options;
  options.duration = SimDuration::Millis(static_cast<int64_t>(scale.minutes * 60e3));
  options.peak_rate_per_sec = scale.peak_rate;
  options.trough_rate_per_sec = scale.peak_rate / 8.0;
  options.cycles = 2;
  options.function_skew = 0.3;  // spread warmth across the catalog
  // Fan-out clumps drive per-function concurrency: each parked environment a
  // burst leaves behind is one more warm env the node must hold.
  options.clump_probability = 0.3;
  options.clump_size = 16;
  return MakeDiurnalWorkload(names, options, rng);
}

struct RunResult {
  bool ok = false;
  uint64_t invocations = 0;
  uint64_t warm_starts = 0;
  uint64_t cold_starts = 0;
  uint64_t repurposed_starts = 0;
  uint64_t failed = 0;
  uint64_t peak_warm_envs = 0;
  uint64_t peak_frames_bytes = 0;
  uint64_t parked_footprint_bytes = 0;
  uint64_t demotions = 0;
  uint64_t promotions = 0;
  double tier_peak[kDensityTierCount] = {0, 0, 0};
  double attach_p50_ms = 0;
  double attach_p99_ms = 0;
  double e2e_p99_ms = 0;
};

RunResult RunSystem(const SystemSpec& spec, const Scale& scale,
                    const std::vector<FunctionProfile>& catalog,
                    const Schedule& schedule) {
  PlatformConfig config;
  config.soft_mem_cap_bytes = kSoftCap;
  // Warmth is bounded by memory, not by the clock: the TTL outlives the
  // trace so every eviction in the table is the cap (or ceiling) speaking.
  config.keep_alive_ttl =
      SimDuration::Millis(static_cast<int64_t>(scale.minutes * 60e3)) +
      SimDuration::Minutes(10);
  config.density.enabled = spec.density;
  // Aggressive hot aging: the faster a hot env sheds its frames, the more
  // envs fit under the ceiling; what it costs is visible in the attach
  // column. Warm->cold is left to capacity (the CXL-full cascade): an env
  // idle through a diurnal trough (~2-3 min) is still likely to be re-
  // attached at the next crest, so it must not sink to NAS on age alone.
  config.density.sweep_interval = SimDuration::Seconds(5);
  config.density.demote_hot_after = SimDuration::Seconds(15);
  config.density.demote_warm_after = SimDuration::Minutes(8);
  config.density.overcommit_factor = scale.overcommit;
  Testbed bed(spec.kind, config);
  for (const FunctionProfile& profile : catalog) {
    bed.sandbox_pool().RegisterFunctionLayer(
        profile.name, std::make_shared<FsLayer>(profile.name + "-deps"));
    if (!bed.platform().Deploy(profile).ok()) {
      return {};
    }
  }
  if (!bed.platform().Run(schedule).ok()) {
    return {};
  }

  RunResult r;
  r.ok = true;
  for (const auto& [name, m] : bed.platform().metrics().per_function()) {
    r.invocations += m.invocations;
    r.warm_starts += m.warm_starts;
    r.cold_starts += m.cold_starts;
    r.repurposed_starts += m.repurposed_starts;
    r.e2e_p99_ms = std::max(r.e2e_p99_ms, m.e2e_ms.P99());
  }
  r.failed = bed.platform().failed_invocations();
  r.peak_warm_envs = bed.platform().keep_alive().peak_size();
  r.peak_frames_bytes = bed.platform().metrics().peak_memory_bytes();
  r.parked_footprint_bytes = bed.platform().keep_alive().peak_footprint_bytes();
  const DensityManager& density = bed.platform().density();
  r.demotions = density.demotions();
  r.promotions = density.promotions();
  for (size_t t = 0; t < kDensityTierCount; ++t) {
    r.tier_peak[t] = density.tier_timeline(static_cast<DensityTier>(t)).peak();
  }
  if (!density.attach_ms().empty()) {
    r.attach_p50_ms = density.attach_ms().Median();
    r.attach_p99_ms = density.attach_ms().P99();
  }
  return r;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

std::string UtcNow() {
  char buf[32];
  const std::time_t t = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&t, &tm_utc);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

int RunBench(bench::BenchEnv& env, const Scale& scale) {
  PrintBanner(std::cout, "Peak warm-environment density @ attach-latency SLO");
  std::cout << "catalog " << scale.functions << " functions, diurnal "
            << Table::Num(scale.minutes, 0) << " min trace (peak "
            << Table::Num(scale.peak_rate, 1) << "/s), soft cap "
            << FormatBytes(kSoftCap) << ", overcommit "
            << Table::Num(scale.overcommit, 0) << "x, SLO p99 <= "
            << Table::Num(scale.slo_ms, 1) << " ms\n\n";

  const std::vector<FunctionProfile> catalog = SyntheticCatalog(scale.functions);
  std::vector<std::string> names;
  names.reserve(catalog.size());
  for (const FunctionProfile& profile : catalog) {
    names.push_back(profile.name);
  }
  const Schedule schedule = DiurnalTrace(names, scale);

  const std::vector<RunResult> sweep =
      bench::ParallelSweep(std::size(kSystems), env.jobs, [&](size_t i) {
        return RunSystem(kSystems[i], scale, catalog, schedule);
      });

  Table table({"System", "Peak warm envs", "Warm", "Repurp", "Cold", "Attach p50 ms",
               "Attach p99 ms", "Peak mem", "Peak parked fp"});
  for (size_t i = 0; i < std::size(kSystems); ++i) {
    const RunResult& r = sweep[i];
    if (!r.ok) {
      std::cerr << "run failed for " << kSystems[i].label << "\n";
      return 1;
    }
    table.AddRow({kSystems[i].label, std::to_string(r.peak_warm_envs),
                  std::to_string(r.warm_starts), std::to_string(r.repurposed_starts),
                  std::to_string(r.cold_starts),
                  Table::Num(r.attach_p50_ms, 3), Table::Num(r.attach_p99_ms, 3),
                  FormatBytes(r.peak_frames_bytes),
                  FormatBytes(r.parked_footprint_bytes)});
  }
  table.Print(std::cout);

  const RunResult& density = sweep[kDensityRow];
  std::cout << "\nTier residency peaks: dram_hot "
            << Table::Num(density.tier_peak[0], 0) << ", cxl_warm "
            << Table::Num(density.tier_peak[1], 0) << ", nas_cold "
            << Table::Num(density.tier_peak[2], 0) << " envs; "
            << density.demotions << " demotions / " << density.promotions
            << " promotions over the trace.\n";

  // The binary-cap baseline is the comparison that matters: T-CXL already
  // shares template pages, so beating CRIU alone would be a strawman.
  uint64_t baseline = 0;
  for (size_t i = 0; i < kDensityRow; ++i) {
    baseline = std::max(baseline, sweep[i].peak_warm_envs);
  }
  const double ratio = baseline == 0
                           ? 0.0
                           : static_cast<double>(density.peak_warm_envs) /
                                 static_cast<double>(baseline);
  std::cout << "Density holds " << density.peak_warm_envs
            << " warm environments vs " << baseline
            << " for the best binary-cap baseline (" << Table::Num(ratio, 1)
            << "x) at attach p99 " << Table::Num(density.attach_p99_ms, 3)
            << " ms.\n";
  if (density.peak_warm_envs >= 10000) {
    std::cout << "Headline: 10k+ warm environments on one node.\n";
  }

  bool ok = true;
  if (ratio < 5.0) {
    std::cerr << "FAIL: density holds only " << Table::Num(ratio, 1)
              << "x the baseline's warm environments (need >= 5x)\n";
    ok = false;
  }
  if (density.attach_p99_ms > scale.slo_ms) {
    std::cerr << "FAIL: attach p99 " << Table::Num(density.attach_p99_ms, 3)
              << " ms breaks the " << Table::Num(scale.slo_ms, 1) << " ms SLO\n";
    ok = false;
  }
  if (density.failed != 0 || density.invocations != sweep[kDensityRow - 1].invocations) {
    std::cerr << "FAIL: density run dropped work (" << density.failed
              << " failed, " << density.invocations << " vs "
              << sweep[0].invocations << " completed)\n";
    ok = false;
  }
  if (!ok) {
    return 1;
  }

  const std::string json_path = env.ExtraValue("--bench-json=");
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::app);
    if (!out) {
      std::cerr << "failed to append record to " << json_path << "\n";
      return 1;
    }
    out << "{\"utc\":\"" << UtcNow() << "\",\"label\":\""
        << JsonEscape(env.ExtraValue("--bench-label=")) << "\",\"host\":"
        << bench::HostJson(env.jobs) << ",\"benchmarks\":{"
        << "\"peak_density/warm_envs\":{\"value\":" << density.peak_warm_envs
        << ",\"direction\":\"higher_is_better\"},"
        << "\"peak_density/warm_envs_baseline\":{\"value\":" << baseline
        << ",\"direction\":\"higher_is_better\"},"
        << "\"peak_density/attach_p99\":{\"real_ns\":"
        << static_cast<uint64_t>(density.attach_p99_ms * 1e6)
        << ",\"promotions\":" << density.promotions
        << ",\"demotions\":" << density.demotions << "}}}\n";
    std::cout << "bench record appended to " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  std::vector<trenv::bench::ExtraFlag> flags = {
      {"--functions=", "--functions=<n>"}, {"--minutes=", "--minutes=<m>"},
      {"--peak-rate=", "--peak-rate=<r>"}, {"--slo-ms=", "--slo-ms=<ms>"},
      {"--overcommit=", "--overcommit=<f>"}, {"--bench-json=", "--bench-json=<path>"},
      {"--bench-label=", "--bench-label=<text>"}};
  trenv::bench::BenchEnv env(argc, argv, flags);
  trenv::Scale scale;
  if (const std::string v = env.ExtraValue("--functions="); !v.empty()) {
    scale.functions = static_cast<uint32_t>(std::atoi(v.c_str()));
  }
  if (const std::string v = env.ExtraValue("--minutes="); !v.empty()) {
    scale.minutes = std::atof(v.c_str());
  }
  if (const std::string v = env.ExtraValue("--peak-rate="); !v.empty()) {
    scale.peak_rate = std::atof(v.c_str());
  }
  if (const std::string v = env.ExtraValue("--slo-ms="); !v.empty()) {
    scale.slo_ms = std::atof(v.c_str());
  }
  if (const std::string v = env.ExtraValue("--overcommit="); !v.empty()) {
    scale.overcommit = std::atof(v.c_str());
  }
  const int rc = trenv::RunBench(env, scale);
  env.Finish();
  return rc;
}
