// Figure 18: (a) peak memory usage during the four workload tests;
// (b) memory usage when starting 50 instances of IR and IFR.
// Every (system, workload) cell is an independent simulation, so part (a)
// sweeps all 24 cells and part (b) all 8 cells in parallel.
#include <iostream>

#include "bench/bench_util.h"

namespace trenv {
namespace {

const SystemKind kSystems[] = {SystemKind::kFaasd,    SystemKind::kCriu,
                               SystemKind::kReapPlus, SystemKind::kFaasnapPlus,
                               SystemKind::kTrEnvCxl, SystemKind::kTrEnvRdma};
const char* const kWorkloads[] = {"W1", "W2", "Azure", "Huawei"};

void PartA(bench::BenchEnv& env) {
  PrintBanner(std::cout, "Figure 18a: peak memory usage during four workloads (GiB)");
  Rng rng(77);
  const auto functions = bench::Table4Names();

  BurstyOptions w1_opts;
  w1_opts.burst_size = 15;
  std::map<std::string, Schedule> workloads;
  workloads["W1"] = MakeBurstyWorkload(functions, w1_opts, rng);
  DiurnalOptions w2_opts;
  w2_opts.peak_rate_per_sec = 3.0;
  workloads["W2"] = MakeDiurnalWorkload(functions, w2_opts, rng);
  workloads["Azure"] = MakeAzureLikeWorkload(functions, rng);
  workloads["Huawei"] = MakeHuaweiLikeWorkload(functions, rng);

  const size_t n_workloads = std::size(kWorkloads);
  const size_t n_cells = std::size(kSystems) * n_workloads;
  std::vector<double> cell_gib = bench::ParallelSweep(n_cells, env.jobs, [&](size_t idx) {
    const SystemKind kind = kSystems[idx / n_workloads];
    const std::string workload = kWorkloads[idx % n_workloads];
    PlatformConfig config;
    if (workload == "W2") {
      config.soft_mem_cap_bytes = cost::kW2SoftMemCap;
    }
    auto run = bench::RunContainerWorkload(kind, workloads[workload], config, functions);
    return static_cast<double>(run.peak_memory) / static_cast<double>(kGiB);
  });

  Table table({"System", "W1", "W2", "Azure", "Huawei"});
  std::map<std::string, std::map<std::string, double>> peaks;
  size_t idx = 0;
  for (SystemKind kind : kSystems) {
    std::vector<std::string> row{SystemName(kind)};
    for (const char* workload : kWorkloads) {
      const double gib = cell_gib[idx++];
      peaks[SystemName(kind)][workload] = gib;
      row.push_back(Table::Num(gib, 2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  for (const char* name : kWorkloads) {
    const double tcxl = peaks["T-CXL"][name];
    std::cout << name << ": T-CXL saves " << Table::Pct(1.0 - tcxl / peaks["CRIU"][name])
              << " vs CRIU, " << Table::Pct(1.0 - tcxl / peaks["REAP+"][name]) << " vs REAP+, "
              << Table::Pct(1.0 - tcxl / peaks["FaaSnap+"][name]) << " vs FaaSnap+\n";
  }
}

void PartB(bench::BenchEnv& env) {
  PrintBanner(std::cout, "Figure 18b: memory when starting 50 instances of IR / IFR (GiB)");
  const SystemKind systems[] = {SystemKind::kReapPlus, SystemKind::kFaasnapPlus,
                                SystemKind::kTrEnvCxl, SystemKind::kTrEnvRdma};
  const char* const fns[] = {"IR", "IFR"};

  const size_t n_cells = std::size(systems) * std::size(fns);
  std::vector<double> cell_gib = bench::ParallelSweep(n_cells, env.jobs, [&](size_t idx) {
    const SystemKind kind = systems[idx / std::size(fns)];
    const std::string fn = fns[idx % std::size(fns)];
    Testbed bed(kind);
    if (!bed.DeployTable4Functions().ok()) {
      return 0.0;
    }
    Schedule schedule;
    for (int i = 0; i < 50; ++i) {
      schedule.push_back({SimTime::Zero() + SimDuration::Millis(i * 10), fn});
    }
    (void)bed.platform().Run(schedule);
    return static_cast<double>(bed.platform().metrics().peak_memory_bytes()) /
           static_cast<double>(kGiB);
  });

  Table table({"System", "IR x50", "IFR x50"});
  std::map<std::string, std::map<std::string, double>> peaks;
  size_t idx = 0;
  for (SystemKind kind : systems) {
    std::vector<std::string> row{SystemName(kind)};
    for (const char* fn : fns) {
      const double gib = cell_gib[idx++];
      peaks[SystemName(kind)][fn] = gib;
      row.push_back(Table::Num(gib, 2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "T-CXL vs T-RDMA memory saving: IR "
            << Table::Pct(1.0 - peaks["T-CXL"]["IR"] / peaks["T-RDMA"]["IR"]) << ", IFR "
            << Table::Pct(1.0 - peaks["T-CXL"]["IFR"] / peaks["T-RDMA"]["IFR"]) << "\n";
  std::cout << "Paper reference: REAP/FaaSnap double T-CXL's memory; T-CXL saves 43.5% vs "
               "T-RDMA on read-heavy IR but only ~13% on write-heavy IFR.\n";
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  trenv::bench::BenchEnv env(argc, argv);
  trenv::PartA(env);
  trenv::PartB(env);
  env.Finish();
  return 0;
}
