// Figure 3: relative cost of serverless (C_s) compared with LLM (C_LLM).
#include <iostream>

#include "src/agents/cost_model.h"
#include "src/common/table.h"

namespace trenv {
namespace {

void Run() {
  PrintBanner(std::cout, "Figure 3: serverless cost relative to LLM cost");
  Table table({"Agent", "C_LLM (USD)", "C_s (USD)", "C_s / C_LLM", "infra share of total"});
  for (const auto& agent : Table2Agents()) {
    const double llm = LlmCallCostUsd(agent.input_tokens, agent.output_tokens);
    const double serverless = ServerlessCostUsd(agent.e2e_latency, agent.vm_memory_bytes);
    const double relative = RelativeServerlessCost(agent);
    table.AddRow({agent.name, Table::Num(llm, 5), Table::Num(serverless, 5),
                  Table::Pct(relative), Table::Pct(relative / (1.0 + relative))});
  }
  table.Print(std::cout);
  std::cout << "Paper reference: serverless cost reaches up to 71% of the LLM cost; "
               "infrastructure overhead can exceed 40% of the total cost.\n";
}

}  // namespace
}  // namespace trenv

int main() {
  trenv::Run();
  return 0;
}
