// Ablation: hot-region placement (paper section 9.2.1's closing remark —
// "performance can be improved by configuring mm-templates to store hot
// regions of memory image in local DRAM").
//
// Compares T-CXL (everything on CXL) against T-DRAM-hot (file-backed hot
// regions pinned in node DRAM, private regions on CXL) on execution latency
// and on the node-memory bill for that pinning. The two system runs are
// independent simulations and execute as one ParallelSweep.
#include <iostream>

#include "bench/bench_util.h"

namespace trenv {
namespace {

const SystemKind kSystems[] = {SystemKind::kTrEnvCxl, SystemKind::kTrEnvDramHot};

void Run(bench::BenchEnv& env) {
  PrintBanner(std::cout, "Ablation: hot regions in local DRAM vs all-CXL");
  Rng rng(404);
  Schedule schedule =
      MakePoissonWorkload(bench::Table4Names(), 5.0, SimDuration::Minutes(8), 0.3, rng);
  PlatformConfig config;
  config.keep_alive_ttl = SimDuration::Seconds(1);  // every invocation restores

  struct Row {
    std::map<std::string, Histogram> exec;
    uint64_t pinned_bytes = 0;
    uint64_t peak_mem = 0;
  };
  std::vector<Row> per_system =
      bench::ParallelSweep(std::size(kSystems), env.jobs, [&](size_t i) {
        auto run =
            bench::RunContainerWorkload(kSystems[i], schedule, config, bench::Table4Names());
        Row row;
        for (const auto& [fn, metrics] : run.bed->platform().metrics().per_function()) {
          row.exec[fn] = metrics.exec_ms;
        }
        row.peak_mem = run.peak_memory;
        // Pinned hot regions live in the node's DRAM pool (shared, one copy).
        row.pinned_bytes = run.bed->tmpfs().used_bytes();
        return row;
      });
  std::map<std::string, Row> rows;
  for (size_t i = 0; i < std::size(kSystems); ++i) {
    rows[SystemName(kSystems[i])] = std::move(per_system[i]);
  }

  Table table({"Func", "T-CXL exec p50 (ms)", "T-DRAM-hot exec p50 (ms)", "speedup"});
  for (const auto& fn : bench::Table4Names()) {
    auto& cxl = rows["T-CXL"].exec[fn];
    auto& hot = rows["T-DRAM-hot"].exec[fn];
    if (cxl.empty() || hot.empty()) {
      continue;
    }
    table.AddRow({fn, Table::Num(cxl.Median()), Table::Num(hot.Median()),
                  Table::Num(cxl.Median() / hot.Median(), 2) + "x"});
  }
  table.Print(std::cout);
  std::cout << "Node memory: T-CXL " << FormatBytes(rows["T-CXL"].peak_mem)
            << " (+0 pinned) vs T-DRAM-hot " << FormatBytes(rows["T-DRAM-hot"].peak_mem)
            << " (+" << FormatBytes(rows["T-DRAM-hot"].pinned_bytes)
            << " pinned shared regions) — pinning trades node memory for latency.\n"
            << "Expected shape: memory-bound functions (DH, IR) speed up the most; "
               "compute-bound ones are unchanged.\n";
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  trenv::bench::BenchEnv env(argc, argv);
  trenv::Run(env);
  env.Finish();
  return 0;
}
