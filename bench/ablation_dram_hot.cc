// Ablation: hot-region placement (paper section 9.2.1's closing remark —
// "performance can be improved by configuring mm-templates to store hot
// regions of memory image in local DRAM").
//
// Compares T-CXL (everything on CXL) against T-DRAM-hot (file-backed hot
// regions pinned in node DRAM, private regions on CXL) and T-DRAM-live
// (the same placement *earned* online: chunks start on CXL and the heat-
// decay promotion policy moves them under a DRAM budget) on execution
// latency and on the node-memory bill for that pinning. The system runs are
// independent simulations and execute as one ParallelSweep.
#include <iostream>

#include "bench/bench_util.h"

namespace trenv {
namespace {

const SystemKind kSystems[] = {SystemKind::kTrEnvCxl, SystemKind::kTrEnvDramHot,
                               SystemKind::kTrEnvDramLive};

void Run(bench::BenchEnv& env) {
  PrintBanner(std::cout, "Ablation: hot regions in local DRAM vs all-CXL");
  Rng rng(404);
  Schedule schedule =
      MakePoissonWorkload(bench::Table4Names(), 5.0, SimDuration::Minutes(8), 0.3, rng);
  PlatformConfig config;
  config.keep_alive_ttl = SimDuration::Seconds(1);  // every invocation restores

  struct Row {
    std::map<std::string, Histogram> exec;
    uint64_t pinned_bytes = 0;
    uint64_t peak_mem = 0;
    uint64_t promoted_chunks = 0;
    uint64_t demoted_chunks = 0;
  };
  std::vector<Row> per_system =
      bench::ParallelSweep(std::size(kSystems), env.jobs, [&](size_t i) {
        auto run =
            bench::RunContainerWorkload(kSystems[i], schedule, config, bench::Table4Names());
        Row row;
        for (const auto& [fn, metrics] : run.bed->platform().metrics().per_function()) {
          row.exec[fn] = metrics.exec_ms;
        }
        row.peak_mem = run.peak_memory;
        // Pinned hot regions live in the node's DRAM pool (shared, one copy).
        row.pinned_bytes = run.bed->tmpfs().used_bytes();
        if (const PromotionManager* promotion = run.bed->promotion()) {
          row.promoted_chunks = promotion->promoted_chunks();
          row.demoted_chunks = promotion->demoted_chunks();
        }
        return row;
      });
  std::map<std::string, Row> rows;
  for (size_t i = 0; i < std::size(kSystems); ++i) {
    rows[SystemName(kSystems[i])] = std::move(per_system[i]);
  }

  Table table({"Func", "T-CXL exec p50 (ms)", "T-DRAM-hot exec p50 (ms)",
               "T-DRAM-live exec p50 (ms)", "pinned speedup", "live speedup"});
  for (const auto& fn : bench::Table4Names()) {
    auto& cxl = rows["T-CXL"].exec[fn];
    auto& hot = rows["T-DRAM-hot"].exec[fn];
    auto& live = rows["T-DRAM-live"].exec[fn];
    if (cxl.empty() || hot.empty() || live.empty()) {
      continue;
    }
    table.AddRow({fn, Table::Num(cxl.Median()), Table::Num(hot.Median()),
                  Table::Num(live.Median()),
                  Table::Num(cxl.Median() / hot.Median(), 2) + "x",
                  Table::Num(cxl.Median() / live.Median(), 2) + "x"});
  }
  table.Print(std::cout);
  const Row& live_row = rows["T-DRAM-live"];
  std::cout << "Node memory: T-CXL " << FormatBytes(rows["T-CXL"].peak_mem)
            << " (+0 pinned) vs T-DRAM-hot " << FormatBytes(rows["T-DRAM-hot"].peak_mem)
            << " (+" << FormatBytes(rows["T-DRAM-hot"].pinned_bytes)
            << " pinned shared regions) — pinning trades node memory for latency.\n"
            << "T-DRAM-live: " << FormatBytes(live_row.peak_mem) << " (+"
            << FormatBytes(live_row.pinned_bytes) << " promoted regions), "
            << live_row.promoted_chunks << " chunks promoted / "
            << live_row.demoted_chunks
            << " demoted — the live policy earns the pinned placement from "
               "observed heat instead of configuring it up front.\n"
            << "Expected shape: memory-bound functions (DH, IR) speed up the most; "
               "compute-bound ones are unchanged; live lands between CXL and "
               "pinned while spending DRAM only on chunks that proved hot.\n";
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  trenv::bench::BenchEnv env(argc, argv);
  trenv::Run(env);
  env.Finish();
  return 0;
}
