// Shared helpers for the figure/table reproduction benches.
#ifndef TRENV_BENCH_BENCH_UTIL_H_
#define TRENV_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/table.h"
#include "src/obs/export.h"
#include "src/platform/cluster.h"
#include "src/obs/trace.h"
#include "src/platform/testbed.h"
#include "src/sim/thread_pool.h"
#include "src/workload/traces.h"

namespace trenv {
namespace bench {

// A bench-specific flag BenchEnv should accept on behalf of the bench:
// `prefix` is matched with rfind (include the '='), `help` is the usage
// string shown in the unknown-flag error alongside the built-in flags.
struct ExtraFlag {
  std::string prefix;  // e.g. "--seeds="
  std::string help;    // e.g. "--seeds=a,b,c"
};

// Observability and concurrency wiring shared by the figure benches:
//   --trace-out=<file>    dump a Chrome trace_event JSON (chrome://tracing,
//                         ui.perfetto.dev) of every platform the bench ran
//   --metrics-out=<file>  dump the process-wide registry in Prometheus text
//   --jobs=N              worker threads for ParallelSweep (default: all
//                         hardware threads); --jobs=1 forces serial sweeps
// With neither output flag the tracer stays disabled and instrumentation
// costs a null check. Unknown flags are an error (exit 2) so typos cannot
// silently run a multi-minute sweep with default settings — and the error
// lists the full set of flags THIS bench accepts, including any ExtraFlags
// the bench registered, so the fix is visible in the failure itself.
struct BenchEnv {
  obs::Tracer tracer;
  std::string trace_out;
  std::string metrics_out;
  unsigned jobs = ThreadPool::DefaultThreads();
  // (prefix, value) for each matched ExtraFlag occurrence, in argv order.
  std::vector<std::pair<std::string, std::string>> extra_args;

  BenchEnv(int argc, char** argv, std::vector<ExtraFlag> extra_flags = {}) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg.rfind("--trace-out=", 0) == 0) {
        trace_out = std::string(arg.substr(12));
      } else if (arg.rfind("--metrics-out=", 0) == 0) {
        metrics_out = std::string(arg.substr(14));
      } else if (arg.rfind("--jobs=", 0) == 0) {
        const int parsed = std::atoi(std::string(arg.substr(7)).c_str());
        if (parsed < 1) {
          std::cerr << "invalid --jobs value: " << arg << " (want an integer >= 1)\n";
          std::exit(2);
        }
        jobs = static_cast<unsigned>(parsed);
      } else {
        bool matched = false;
        for (const ExtraFlag& flag : extra_flags) {
          if (arg.rfind(flag.prefix, 0) == 0) {
            extra_args.emplace_back(flag.prefix, std::string(arg.substr(flag.prefix.size())));
            matched = true;
            break;
          }
        }
        if (!matched) {
          std::string supported = "--trace-out=<file> --metrics-out=<file> --jobs=<n>";
          for (const ExtraFlag& flag : extra_flags) {
            supported += " " + flag.help;
          }
          std::cerr << "unknown flag: " << arg << " (supported: " << supported << ")\n";
          std::exit(2);
        }
      }
    }
    tracer.set_enabled(!trace_out.empty());
  }

  // Last value given for an ExtraFlag prefix, or `fallback` if absent.
  std::string ExtraValue(std::string_view prefix, std::string_view fallback = "") const {
    std::string value(fallback);
    for (const auto& [p, v] : extra_args) {
      if (p == prefix) {
        value = v;
      }
    }
    return value;
  }

  // Handed to PlatformConfig::tracer; null when tracing is off so the
  // instrumented code takes its zero-cost path. Parallel sweep runs must NOT
  // use this shared tracer — they record into a private one (see
  // MakeRunTracer) and merge it back with AbsorbTracer.
  obs::Tracer* tracer_or_null() { return trace_out.empty() ? nullptr : &tracer; }

  bool tracing() const { return !trace_out.empty(); }
  bool wants_output() const { return !trace_out.empty() || !metrics_out.empty(); }

  // A private tracer for one sweep run, enabled iff --trace-out was given;
  // null when tracing is off. The caller keeps it alive until AbsorbTracer.
  std::unique_ptr<obs::Tracer> MakeRunTracer() const {
    if (trace_out.empty()) {
      return nullptr;
    }
    auto run_tracer = std::make_unique<obs::Tracer>();
    run_tracer->set_enabled(true);
    return run_tracer;
  }

  // Merges a per-run tracer into the shared one. Call on the main thread, in
  // config-index order, after the sweep has joined.
  void AbsorbTracer(const obs::Tracer* run_tracer) {
    if (run_tracer != nullptr && tracing()) {
      tracer.MergeFrom(*run_tracer);
    }
  }

  // Folds a platform-owned registry into the process-wide one under
  // `prefix.` — benches that build several short-lived testbeds call this
  // before each testbed dies so Finish() still sees its totals. Call on the
  // main thread only (after parallel sweeps have joined).
  void AbsorbRegistry(std::string_view prefix, const obs::Registry& registry) {
    if (!wants_output()) {
      return;
    }
    obs::Registry& sink = obs::DefaultRegistry();
    for (const auto& [name, counter] : registry.counters()) {
      sink.GetCounter(std::string(prefix) + "." + name)->Add(counter->value());
    }
    for (const auto& [name, gauge] : registry.gauges()) {
      sink.GetGauge(std::string(prefix) + "." + name)->Set(gauge->value());
    }
  }

  // Writes the requested outputs; call once after the bench body. `registry`
  // defaults to the process-wide one (pool/mmt stats of non-testbed setups).
  void Finish(const obs::Registry* registry = nullptr) {
    if (registry == nullptr) {
      registry = &obs::DefaultRegistry();
    }
    if (!trace_out.empty()) {
      const Status status = obs::WriteChromeTraceFile(tracer, trace_out, registry);
      if (status.ok()) {
        std::cout << "trace written to " << trace_out << " (" << tracer.spans().size()
                  << " spans; open in chrome://tracing or ui.perfetto.dev)\n";
      } else {
        std::cerr << "trace export failed: " << status << "\n";
      }
    }
    if (!metrics_out.empty()) {
      const Status status = obs::WritePrometheusFile(*registry, metrics_out);
      if (status.ok()) {
        std::cout << "metrics written to " << metrics_out << "\n";
      } else {
        std::cerr << "metrics export failed: " << status << "\n";
      }
    }
  }
};

// Runs fn(0), ..., fn(count-1) concurrently on up to `jobs` threads and
// returns the results in index order. The sweep body must be self-contained:
// each call builds its own EventScheduler / Testbed / Registry / Tracer and
// must not print or touch process-wide state (stdout, DefaultRegistry, the
// shared BenchEnv tracer) — do all printing and merging from the results
// afterwards, which keeps output and metric order deterministic regardless
// of which run finishes first. With jobs <= 1 the runs execute inline, which
// is also the bitwise reference behavior the parallel path must match.
template <typename Fn>
auto ParallelSweep(size_t count, unsigned jobs, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, size_t>> {
  using Result = std::invoke_result_t<Fn&, size_t>;
  static_assert(std::is_default_constructible_v<Result>,
                "sweep results are slot-assigned and must be default-constructible");
  std::vector<Result> results(count);
  if (count == 0) {
    return results;
  }
  if (jobs <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) {
      results[i] = fn(i);
    }
    return results;
  }
  ThreadPool pool(std::min<unsigned>(jobs, static_cast<unsigned>(count)));
  for (size_t i = 0; i < count; ++i) {
    pool.Submit([&results, &fn, i] { results[i] = fn(i); });
  }
  pool.Wait();
  return results;
}

// Container-platform experiment: deploy Table 4, run a warm-up, clear
// metrics, run the measured workload, and return the testbed for inspection.
struct ContainerRunResult {
  std::unique_ptr<Testbed> bed;
  // Peak memory observed during the measured window (bytes).
  uint64_t peak_memory = 0;
};

inline Schedule WarmupSchedule(const std::vector<std::string>& functions) {
  // ~5 minutes of warm-up (paper section 9.1): a burst-scale wave per
  // function so every system reaches its steady state — baselines populate
  // their keep-alive caches (which W1's long gaps then expire), and TrEnv's
  // function-agnostic sandbox pool fills with repurposable sandboxes.
  Schedule warmup;
  int i = 0;
  for (const auto& fn : functions) {
    for (int k = 0; k < 15; ++k) {
      warmup.push_back({SimTime::Zero() + SimDuration::Seconds(20 * (i % 3)) +
                            SimDuration::Millis(150 * k + 17 * i),
                        fn});
    }
    ++i;
  }
  SortSchedule(warmup);
  return warmup;
}

inline ContainerRunResult RunContainerWorkload(SystemKind kind, const Schedule& schedule,
                                               PlatformConfig config,
                                               const std::vector<std::string>& functions) {
  ContainerRunResult result;
  result.bed = std::make_unique<Testbed>(kind, config);
  if (!result.bed->DeployTable4Functions().ok()) {
    std::cerr << "deploy failed for " << SystemName(kind) << "\n";
    return result;
  }
  // Warm-up phase (section 9.1), then clear metrics and shift the measured
  // schedule past the warm-up window.
  Schedule warmup = WarmupSchedule(functions);
  (void)result.bed->platform().Run(warmup);
  result.bed->platform().metrics().Clear();
  // Measurement starts one keep-alive TTL past the warm-up so W1's premise
  // holds (warm instances expired; TrEnv's sandbox pool persists).
  const SimTime measured_start = result.bed->platform().scheduler().now() +
                                 config.keep_alive_ttl + SimDuration::Minutes(2);
  Schedule shifted = schedule;
  for (auto& invocation : shifted) {
    invocation.arrival = measured_start + (invocation.arrival - SimTime::Zero());
  }
  (void)result.bed->platform().Run(shifted);
  result.peak_memory = result.bed->platform().metrics().peak_memory_bytes();
  return result;
}

// Runs a materialized schedule on a cluster, sharded when shards > 1. The
// cluster benches expose this behind a --shards flag: RunSharded with zero
// lookahead is byte-identical to Run(), so every bench report doubles as a
// determinism check for the sharded core.
inline Status RunCluster(Cluster& cluster, const Schedule& schedule, uint32_t shards) {
  if (shards <= 1) {
    return cluster.Run(schedule);
  }
  ScheduleStream stream(schedule);
  ShardedRunOptions options;
  options.shards = shards;
  return cluster.RunSharded(stream, options);
}

// Host metadata stamped into every BENCH_micro.json record so
// tools/check_bench_regression.py can refuse to compare wall-clock numbers
// measured on different machines (different core counts or compilers make
// the ratio meaningless).
inline std::string CompilerVersionString() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." + std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

inline std::string HostJson(unsigned jobs) {
  return "{\"jobs\":" + std::to_string(jobs) +
         ",\"cores\":" + std::to_string(std::thread::hardware_concurrency()) +
         ",\"compiler\":\"" + CompilerVersionString() + "\"}";
}

inline std::vector<std::string> Table4Names() {
  std::vector<std::string> names;
  for (const auto& fn : Table4Functions()) {
    names.push_back(fn.name);
  }
  return names;
}

}  // namespace bench
}  // namespace trenv

#endif  // TRENV_BENCH_BENCH_UTIL_H_
