// Shared helpers for the figure/table reproduction benches.
#ifndef TRENV_BENCH_BENCH_UTIL_H_
#define TRENV_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/platform/testbed.h"
#include "src/workload/traces.h"

namespace trenv {
namespace bench {

// Container-platform experiment: deploy Table 4, run a warm-up, clear
// metrics, run the measured workload, and return the testbed for inspection.
struct ContainerRunResult {
  std::unique_ptr<Testbed> bed;
  // Peak memory observed during the measured window (bytes).
  uint64_t peak_memory = 0;
};

inline Schedule WarmupSchedule(const std::vector<std::string>& functions) {
  // ~5 minutes of warm-up (paper section 9.1): a burst-scale wave per
  // function so every system reaches its steady state — baselines populate
  // their keep-alive caches (which W1's long gaps then expire), and TrEnv's
  // function-agnostic sandbox pool fills with repurposable sandboxes.
  Schedule warmup;
  int i = 0;
  for (const auto& fn : functions) {
    for (int k = 0; k < 15; ++k) {
      warmup.push_back({SimTime::Zero() + SimDuration::Seconds(20 * (i % 3)) +
                            SimDuration::Millis(150 * k + 17 * i),
                        fn});
    }
    ++i;
  }
  SortSchedule(warmup);
  return warmup;
}

inline ContainerRunResult RunContainerWorkload(SystemKind kind, const Schedule& schedule,
                                               PlatformConfig config,
                                               const std::vector<std::string>& functions) {
  ContainerRunResult result;
  result.bed = std::make_unique<Testbed>(kind, config);
  if (!result.bed->DeployTable4Functions().ok()) {
    std::cerr << "deploy failed for " << SystemName(kind) << "\n";
    return result;
  }
  // Warm-up phase (section 9.1), then clear metrics and shift the measured
  // schedule past the warm-up window.
  Schedule warmup = WarmupSchedule(functions);
  (void)result.bed->platform().Run(warmup);
  result.bed->platform().metrics().Clear();
  // Measurement starts one keep-alive TTL past the warm-up so W1's premise
  // holds (warm instances expired; TrEnv's sandbox pool persists).
  const SimTime measured_start = result.bed->platform().scheduler().now() +
                                 config.keep_alive_ttl + SimDuration::Minutes(2);
  Schedule shifted = schedule;
  for (auto& invocation : shifted) {
    invocation.arrival = measured_start + (invocation.arrival - SimTime::Zero());
  }
  (void)result.bed->platform().Run(shifted);
  result.peak_memory = result.bed->platform().metrics().peak_memory_bytes();
  return result;
}

inline std::vector<std::string> Table4Names() {
  std::vector<std::string> names;
  for (const auto& fn : Table4Functions()) {
    names.push_back(fn.name);
  }
  return names;
}

}  // namespace bench
}  // namespace trenv

#endif  // TRENV_BENCH_BENCH_UTIL_H_
