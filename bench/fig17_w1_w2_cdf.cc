// Figure 17: CDF of per-function end-to-end latency under the two
// representative workloads — W1 (bursty, inter-burst gap > keep-alive) and
// W2 (diurnal, tight 32 GiB memory cap) — across all six systems. The six
// system runs are independent simulations and execute as one ParallelSweep.
#include <iostream>

#include "bench/bench_util.h"

namespace trenv {
namespace {

const SystemKind kSystems[] = {SystemKind::kFaasd,       SystemKind::kCriu,
                               SystemKind::kReapPlus,    SystemKind::kFaasnapPlus,
                               SystemKind::kTrEnvCxl,    SystemKind::kTrEnvRdma};

void RunWorkload(const std::string& label, const Schedule& schedule, PlatformConfig config,
                 bench::BenchEnv& env) {
  PrintBanner(std::cout, "Figure 17 (" + label + "): E2E latency per system");
  std::cout << "invocations scheduled: " << schedule.size() << "\n";

  struct SystemResult {
    std::string name;
    FunctionMetrics aggregate;
    std::map<std::string, FunctionMetrics> per_function;
    std::unique_ptr<obs::Tracer> tracer;
    std::unique_ptr<Testbed> bed;
  };
  const size_t n_systems = std::size(kSystems);
  std::vector<SystemResult> results =
      bench::ParallelSweep(n_systems, env.jobs, [&](size_t i) {
        const SystemKind kind = kSystems[i];
        SystemResult result;
        result.tracer = env.MakeRunTracer();
        PlatformConfig run_config = config;
        run_config.tracer = result.tracer.get();
        auto run = bench::RunContainerWorkload(kind, schedule, run_config, bench::Table4Names());
        result.name = SystemName(kind);
        result.aggregate = run.bed->platform().metrics().Aggregate();
        result.per_function = run.bed->platform().metrics().per_function();
        result.bed = std::move(run.bed);
        return result;
      });
  for (const auto& result : results) {
    env.AbsorbTracer(result.tracer.get());
    env.AbsorbRegistry(label + "." + result.name, result.bed->platform().metrics().registry());
  }

  Table table({"System", "n", "P50 (ms)", "P90 (ms)", "P99 (ms)", "mean (ms)"});
  for (const auto& result : results) {
    const auto& h = result.aggregate.e2e_ms;
    if (h.empty()) {
      continue;
    }
    table.AddRow({result.name, std::to_string(h.count()), Table::Num(h.Percentile(50)),
                  Table::Num(h.Percentile(90)), Table::Num(h.P99()), Table::Num(h.Mean())});
  }
  table.Print(std::cout);

  // Per-function P99 across systems (the vertical dotted lines of Fig 17).
  Table per_fn({"Func", "faasd", "CRIU", "REAP+", "FaaSnap+", "T-CXL", "T-RDMA"});
  for (const auto& fn : bench::Table4Names()) {
    std::vector<std::string> row{fn};
    for (const auto& result : results) {
      auto it = result.per_function.find(fn);
      row.push_back(it == result.per_function.end() || it->second.e2e_ms.empty()
                        ? "-"
                        : Table::Num(it->second.e2e_ms.P99()));
    }
    per_fn.AddRow(row);
  }
  std::cout << "\nPer-function P99 E2E latency (ms):\n";
  per_fn.Print(std::cout);

  // CDF series for a short function (DH) — the regime where TrEnv shines.
  std::cout << "\nCDF of DH latency (ms -> fraction):\n";
  SeriesPrinter cdf("latency_ms", {"cum_fraction"});
  for (const auto& result : results) {
    auto it = result.per_function.find("DH");
    if (it == result.per_function.end() || it->second.e2e_ms.empty()) {
      continue;
    }
    std::cout << "# system=" << result.name << "\n";
    for (const auto& [x, y] : it->second.e2e_ms.Cdf(12)) {
      std::cout << Table::Num(x) << " " << Table::Num(y, 3) << "\n";
    }
  }

  // Speedups, as the paper reports them.
  auto p99_of = [&](const std::string& name) -> double {
    for (const auto& result : results) {
      if (result.name == name) {
        return result.aggregate.e2e_ms.P99();
      }
    }
    return 0;
  };
  const double tcxl = p99_of("T-CXL");
  std::cout << "\nP99 speedup of T-CXL vs REAP+:   " << Table::Num(p99_of("REAP+") / tcxl, 2)
            << "x\n";
  std::cout << "P99 speedup of T-CXL vs FaaSnap+: "
            << Table::Num(p99_of("FaaSnap+") / tcxl, 2) << "x\n";
  std::cout << "P99 speedup of T-CXL vs CRIU:     " << Table::Num(p99_of("CRIU") / tcxl, 2)
            << "x\n";
}

void Run(bench::BenchEnv& env) {
  Rng rng(2024);
  BurstyOptions w1;
  w1.duration = SimDuration::Minutes(30);
  w1.burst_size = 20;
  Schedule schedule_w1 = MakeBurstyWorkload(bench::Table4Names(), w1, rng);
  PlatformConfig config_w1;
  RunWorkload("W1 bursty", schedule_w1, config_w1, env);

  DiurnalOptions w2;
  w2.duration = SimDuration::Minutes(30);
  w2.peak_rate_per_sec = 8.0;
  w2.trough_rate_per_sec = 0.5;
  Schedule schedule_w2 = MakeDiurnalWorkload(bench::Table4Names(), w2, rng);
  PlatformConfig config_w2;
  config_w2.soft_mem_cap_bytes = cost::kW2SoftMemCap;  // tight 32 GiB cap
  RunWorkload("W2 diurnal, 32 GiB cap", schedule_w2, config_w2, env);

  std::cout << "\nPaper reference: T-CXL achieves 1.11x-5.69x (W1/W2) P99 speedup vs REAP+ "
               "and 1.17x-18x vs FaaSnap+; faasd/CRIU are dominated by startup.\n";
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  trenv::bench::BenchEnv env(argc, argv);
  trenv::Run(env);
  env.Finish();
  return 0;
}
