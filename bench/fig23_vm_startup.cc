// Figure 23: startup latency of the Blackjack agent on the VM platforms —
// (a) sequential single launches, (b) 10 concurrent launches. Each
// (system, concurrency) cell is an independent AgentVmPlatform simulation,
// so all 8 cells execute as one ParallelSweep.
#include <iostream>

#include "bench/bench_util.h"
#include "src/vm/vm_platform.h"

namespace trenv {
namespace {

double MeasureStartup(const VmSystemConfig& config, int concurrent) {
  AgentVmPlatform platform(config);
  for (const auto& agent : Table2Agents()) {
    (void)platform.DeployAgent(agent);
  }
  // Warm the sandbox pool to the measured concurrency (steady state: every
  // completed agent returns its hypervisor sandbox to the pool).
  for (int i = 0; i < concurrent; ++i) {
    (void)platform.SubmitLaunch(SimTime::Zero() + SimDuration::Millis(i), "Blackjack");
  }
  platform.RunToCompletion();
  auto& metrics = platform.MetricsFor("Blackjack");
  metrics.startup_ms.Clear();
  const SimTime start = platform.scheduler().now() + SimDuration::Seconds(5);
  for (int i = 0; i < concurrent; ++i) {
    (void)platform.SubmitLaunch(start, "Blackjack");
  }
  platform.RunToCompletion();
  return platform.MetricsFor("Blackjack").startup_ms.Mean();
}

void Run(bench::BenchEnv& env) {
  PrintBanner(std::cout, "Figure 23: Blackjack VM startup latency (ms)");
  const VmSystemConfig configs[] = {E2bConfig(), E2bPlusConfig(), VanillaChConfig(),
                                    TrEnvVmConfig()};
  const int concurrency[] = {1, 10};
  const size_t n_cells = std::size(configs) * std::size(concurrency);
  std::vector<double> cells = bench::ParallelSweep(n_cells, env.jobs, [&](size_t idx) {
    return MeasureStartup(configs[idx / std::size(concurrency)],
                          concurrency[idx % std::size(concurrency)]);
  });

  Table table({"System", "Single launch", "10 concurrent", "vs E2B (single)"});
  double e2b_single = 0;
  std::vector<std::array<double, 2>> rows;
  size_t idx = 0;
  for (const auto& config : configs) {
    const double single = cells[idx++];
    const double ten = cells[idx++];
    if (config.name == "E2B") {
      e2b_single = single;
    }
    rows.push_back({single, ten});
  }
  idx = 0;
  for (const auto& config : configs) {
    table.AddRow({config.name, Table::Ms(rows[idx][0]), Table::Ms(rows[idx][1]),
                  Table::Pct(1.0 - rows[idx][0] / e2b_single)});
    ++idx;
  }
  table.Print(std::cout);
  std::cout << "Paper reference: TrEnv cuts startup ~40% vs E2B and ~45% vs E2B+; vanilla "
               "CH pays >700 ms for its full memory copy; E2B suffers ~97 ms network setup "
               "and ~63 ms cgroup migration, which worsen under concurrency.\n";
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  trenv::bench::BenchEnv env(argc, argv);
  trenv::Run(env);
  env.Finish();
  return 0;
}
