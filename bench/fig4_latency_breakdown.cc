// Figure 4: breakdown of the startup latency for a Python-based function:
// cold start (sandbox + bootstrap) vs CRIU restore (sandbox + process + mem)
// vs TrEnv, highlighting the sandbox overhead. The three system runs are
// independent simulations and execute as one ParallelSweep; each records
// into a private tracer/registry that is merged afterwards in system order.
#include <iostream>

#include "bench/bench_util.h"

namespace trenv {
namespace {

const SystemKind kSystems[] = {SystemKind::kFaasd, SystemKind::kCriu, SystemKind::kTrEnvCxl};

struct SystemRun {
  std::string name;
  std::vector<std::string> row;  // empty on failure
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<Testbed> bed;
};

SystemRun RunOne(SystemKind kind, const bench::BenchEnv& env) {
  SystemRun result;
  result.name = SystemName(kind);
  result.tracer = env.MakeRunTracer();
  PlatformConfig config;
  config.tracer = result.tracer.get();
  result.bed = std::make_unique<Testbed>(kind, config);
  Testbed& bed = *result.bed;
  if (!bed.DeployTable4Functions().ok()) {
    return result;
  }
  // Run one invocation for the E2E column, then retire it so TrEnv's pool
  // holds a repurposable sandbox (its steady state). With --trace-out the
  // platform emits this invocation's spans (restore.* phases, fault.touch,
  // exec) under the process named after the system.
  (void)bed.platform().Run(Schedule{{SimTime::Zero(), "JS"}});
  bed.platform().EvictAllIdle();
  // Reconstruct the phases from a direct engine call for the breakdown; the
  // engine-level detail spans land on a dedicated "breakdown" track.
  RestoreContext ctx;
  FrameAllocator frames(8ULL * kGiB);
  PidAllocator pids;
  ctx.frames = &frames;
  ctx.backends = &bed.backends();
  ctx.pids = &pids;
  obs::SpanId breakdown_span = obs::kInvalidSpanId;
  if (result.tracer != nullptr) {
    ctx.tracer = result.tracer.get();
    ctx.trace_loc = {bed.platform().trace_pid(), /*track=*/1000000};
    breakdown_span = ctx.tracer->StartSpan(ctx.trace_loc, "restore.breakdown", "restore");
    ctx.trace_parent = breakdown_span;
  }
  const FunctionProfile* profile = FindTable4Function("JS");
  auto outcome = bed.engine().Restore(*profile, ctx);
  if (ctx.tracer != nullptr) {
    ctx.tracer->EndSpan(breakdown_span);
  }
  if (!outcome.ok()) {
    std::cerr << "restore failed\n";
    return result;
  }
  const auto& startup = outcome->startup;
  const auto& e2e = bed.platform().metrics().per_function().at("JS").e2e_ms;
  result.row = {SystemName(kind), Table::Ms(startup.sandbox.millis()),
                startup.process_is_cpu ? Table::Ms(startup.process.millis()) + " (bootstrap)"
                                       : Table::Ms(startup.process.millis()),
                Table::Ms(startup.memory.millis()), Table::Ms(startup.Total().millis()),
                Table::Ms(e2e.Mean())};
  return result;
}

// Attach -> first-invoke latency for an RDMA-homed template: the restore
// critical path plus the execution-phase fault overhead of the invocation
// that follows. With `prefetch` the first platform invocation records the
// working set; the measured (second) restore then bulk-fetches it overlapped
// with the sandbox/process phases instead of major-faulting page by page.
struct RdmaRun {
  std::string name;
  std::vector<std::string> row;  // empty on failure
  double attach_first_invoke_ms = 0.0;
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<Testbed> bed;
};

RdmaRun RunRdma(bool prefetch, const bench::BenchEnv& env) {
  RdmaRun result;
  result.name = prefetch ? "T-RDMA+prefetch" : "T-RDMA";
  result.tracer = env.MakeRunTracer();
  PlatformConfig config;
  config.tracer = result.tracer.get();
  config.trenv_prefetch = prefetch;
  result.bed = std::make_unique<Testbed>(SystemKind::kTrEnvRdma, config);
  Testbed& bed = *result.bed;
  if (!bed.DeployTable4Functions().ok()) {
    return result;
  }
  // First invocation: records the working set (prefetch runs only), then
  // retires so the sandbox pool holds a repurposable sandbox.
  (void)bed.platform().Run(Schedule{{SimTime::Zero(), "JS"}});
  bed.platform().EvictAllIdle();

  RestoreContext ctx;
  FrameAllocator frames(8ULL * kGiB);
  PidAllocator pids;
  ctx.frames = &frames;
  ctx.backends = &bed.backends();
  ctx.pids = &pids;
  const FunctionProfile* profile = FindTable4Function("JS");
  auto outcome = bed.engine().Restore(*profile, ctx);
  if (!outcome.ok()) {
    std::cerr << "restore failed\n";
    return result;
  }
  auto overheads = bed.engine().OnExecute(*profile, *outcome->instance, ctx);
  if (!overheads.ok()) {
    std::cerr << "execute failed\n";
    return result;
  }
  const SimDuration total = outcome->startup.Total() + overheads->added_latency;
  result.attach_first_invoke_ms = total.millis();
  result.row = {result.name, Table::Ms(outcome->startup.Total().millis()),
                Table::Ms(overheads->added_latency.millis()), Table::Ms(total.millis())};
  return result;
}

void Run(bench::BenchEnv& env) {
  PrintBanner(std::cout,
              "Figure 4: startup-latency breakdown for a Python function (JS, ~95 MiB image)");
  Table table({"System", "Sandbox", "Process/Bootstrap", "Memory", "Startup total", "E2E"});
  std::vector<SystemRun> runs = bench::ParallelSweep(
      std::size(kSystems), env.jobs, [&](size_t i) { return RunOne(kSystems[i], env); });
  for (const auto& run : runs) {
    if (!run.row.empty()) {
      table.AddRow(run.row);
    }
    env.AbsorbTracer(run.tracer.get());
    if (run.bed != nullptr) {
      env.AbsorbRegistry(run.name, run.bed->platform().metrics().registry());
    }
  }
  table.Print(std::cout);
  std::cout << "Paper reference: sandbox creation rivals or exceeds execution; CRIU's "
               "memory copy alone is >60 ms for a 60 MiB image; TrEnv repurposes in "
               "single-digit milliseconds.\n";

  std::cout << "\nRDMA-homed template: attach -> first invoke (steady state, recorded "
               "working set)\n";
  Table rdma_table({"Config", "Startup", "Exec fault overhead", "Attach+first-invoke"});
  std::vector<RdmaRun> rdma_runs =
      bench::ParallelSweep(2, env.jobs, [&](size_t i) { return RunRdma(i == 1, env); });
  for (const auto& run : rdma_runs) {
    if (!run.row.empty()) {
      rdma_table.AddRow(run.row);
    }
    env.AbsorbTracer(run.tracer.get());
    if (run.bed != nullptr) {
      env.AbsorbRegistry(run.name, run.bed->platform().metrics().registry());
    }
  }
  rdma_table.Print(std::cout);
  if (rdma_runs.size() == 2 && rdma_runs[1].attach_first_invoke_ms > 0.0) {
    std::cout << "Working-set prefetch speedup: "
              << Table::Num(rdma_runs[0].attach_first_invoke_ms /
                                rdma_runs[1].attach_first_invoke_ms,
                            2)
              << "x (batched bulk fetch overlapped with sandbox+process phases vs "
                 "demand major faults)\n";
  }
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  trenv::bench::BenchEnv env(argc, argv);
  trenv::Run(env);
  env.Finish();
  return 0;
}
