// Figure 4: breakdown of the startup latency for a Python-based function:
// cold start (sandbox + bootstrap) vs CRIU restore (sandbox + process + mem)
// vs TrEnv, highlighting the sandbox overhead.
#include <iostream>

#include "bench/bench_util.h"

namespace trenv {
namespace {

void RunOne(SystemKind kind, Table& table) {
  Testbed bed(kind);
  if (!bed.DeployTable4Functions().ok()) {
    return;
  }
  // Run one invocation for the E2E column, then retire it so TrEnv's pool
  // holds a repurposable sandbox (its steady state).
  (void)bed.platform().Run(Schedule{{SimTime::Zero(), "JS"}});
  bed.platform().EvictAllIdle();
  // Reconstruct the phases from a direct engine call for the breakdown.
  RestoreContext ctx;
  FrameAllocator frames(8ULL * kGiB);
  PidAllocator pids;
  ctx.frames = &frames;
  ctx.backends = &bed.backends();
  ctx.pids = &pids;
  const FunctionProfile* profile = FindTable4Function("JS");
  auto outcome = bed.engine().Restore(*profile, ctx);
  if (!outcome.ok()) {
    std::cerr << "restore failed\n";
    return;
  }
  const auto& startup = outcome->startup;
  const auto& e2e = bed.platform().metrics().per_function().at("JS").e2e_ms;
  table.AddRow({SystemName(kind), Table::Ms(startup.sandbox.millis()),
                startup.process_is_cpu ? Table::Ms(startup.process.millis()) + " (bootstrap)"
                                       : Table::Ms(startup.process.millis()),
                Table::Ms(startup.memory.millis()), Table::Ms(startup.Total().millis()),
                Table::Ms(e2e.Mean())});
}

void Run() {
  PrintBanner(std::cout,
              "Figure 4: startup-latency breakdown for a Python function (JS, ~95 MiB image)");
  Table table({"System", "Sandbox", "Process/Bootstrap", "Memory", "Startup total", "E2E"});
  RunOne(SystemKind::kFaasd, table);
  RunOne(SystemKind::kCriu, table);
  RunOne(SystemKind::kTrEnvCxl, table);
  table.Print(std::cout);
  std::cout << "Paper reference: sandbox creation rivals or exceeds execution; CRIU's "
               "memory copy alone is >60 ms for a 60 MiB image; TrEnv repurposes in "
               "single-digit milliseconds.\n";
}

}  // namespace
}  // namespace trenv

int main() {
  trenv::Run();
  return 0;
}
