// Micro-operation benchmarks (google-benchmark): throughput of the hot
// simulator primitives — page-table bulk faults, mm-template attach, dedup
// ingestion, DES event dispatch and schedule/cancel churn. These guard the
// simulator's own performance; the paper-figure benches above depend on them
// being fast.
//
// Besides the console output, every run appends one JSON-lines record to
// BENCH_micro.json (override with --bench-json=PATH, disable with
// --bench-json=), so the performance trajectory across PRs accumulates in
// one comparable file. See docs/performance.md.
#include <benchmark/benchmark.h>

#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/criu/deduplicator.h"
#include "src/criu/checkpointer.h"
#include "src/mempool/cxl_pool.h"
#include "src/mempool/rdma_pool.h"
#include "src/mmtemplate/api.h"
#include "src/platform/keep_alive_pool.h"
#include "src/platform/testbed.h"
#include "src/runtime/working_set.h"
#include "src/sim/cpu.h"
#include "src/simkernel/fault_handler.h"

namespace trenv {
namespace {

void BM_PageTableMapLookup(benchmark::State& state) {
  PageTable table;
  PteFlags flags;
  flags.valid = true;
  uint64_t i = 0;
  for (auto _ : state) {
    table.MapRange((i % 1024) * 16, 16, flags, i * 16, i);
    benchmark::DoNotOptimize(table.Lookup((i % 1024) * 16 + 7));
    ++i;
  }
}
BENCHMARK(BM_PageTableMapLookup);

void BM_BulkCowFault64MiB(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    FrameAllocator frames(4ULL * kGiB);
    CxlPool cxl(4ULL * kGiB);
    BackendRegistry backends;
    backends.Register(&cxl);
    FaultHandler handler(&frames, &backends);
    MmStruct mm;
    const uint64_t npages = BytesToPages(64 * kMiB);
    (void)mm.AddVma(MakeAnonVma(0x10000000, npages * kPageSize, Protection::ReadWrite(), "img"));
    auto base = cxl.AllocatePages(npages);
    (void)cxl.WriteContent(*base, npages, 1);
    PteFlags flags;
    flags.valid = true;
    flags.write_protected = true;
    flags.pool = PoolKind::kCxl;
    mm.page_table().MapRange(AddrToVpn(0x10000000), npages, flags, *base, 1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(handler.AccessRange(mm, 0x10000000, npages, true));
  }
}
BENCHMARK(BM_BulkCowFault64MiB);

void BM_MmtAttach855MiB(benchmark::State& state) {
  CxlPool cxl(8ULL * kGiB);
  BackendRegistry backends;
  backends.Register(&cxl);
  MmtApi api(&backends);
  const uint64_t npages = BytesToPages(855 * kMiB);
  MmtId id = api.MmtCreate("ir");
  (void)api.MmtAddMap(id, 0x10000000, npages * kPageSize, Protection::ReadWrite(), true, -1, 0);
  auto base = cxl.AllocatePages(npages);
  (void)cxl.WriteContent(*base, npages, 7);
  (void)api.MmtSetupPt(id, 0x10000000, npages * kPageSize, *base, PoolKind::kCxl);
  for (auto _ : state) {
    MmStruct mm;
    benchmark::DoNotOptimize(api.MmtAttach(id, &mm));
  }
}
BENCHMARK(BM_MmtAttach855MiB);

// Page-table fault storm: a 64 MiB lazy RDMA image is bulk-write-faulted in
// 64-page chunks from both ends toward the middle (two advancing frontiers,
// the shape a warm restore's demand paging produces), then torn down. Every
// chunk is one AccessRange -> run split + splice + merge in the page table.
void BM_PageTableFaultStorm(benchmark::State& state) {
  FrameAllocator frames(8ULL * kGiB);
  RdmaPool rdma(8ULL * kGiB);
  BackendRegistry backends;
  backends.Register(&rdma);
  FaultHandler handler(&frames, &backends);
  const uint64_t npages = BytesToPages(64 * kMiB);
  const Vaddr base_addr = 0x10000000;
  MmStruct mm;
  (void)mm.AddVma(MakeAnonVma(base_addr, npages * kPageSize, Protection::ReadWrite(), "img"));
  auto pool_base = rdma.AllocatePages(npages);
  (void)rdma.WriteContent(*pool_base, npages, 1);
  PteFlags lazy;
  lazy.valid = false;
  lazy.pool = PoolKind::kRdma;
  const uint64_t chunk = 64;
  const uint64_t nchunks = npages / chunk;
  for (auto _ : state) {
    mm.page_table().MapRange(AddrToVpn(base_addr), npages, lazy, *pool_base, 1);
    for (uint64_t c = 0; c < nchunks; ++c) {
      const uint64_t idx = (c % 2 == 0) ? c / 2 : nchunks - 1 - c / 2;
      benchmark::DoNotOptimize(
          handler.AccessRange(mm, base_addr + idx * chunk * kPageSize, chunk, true));
    }
    mm.page_table().UnmapRange(AddrToVpn(base_addr), npages);
    frames.FreePages(frames.used_pages());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(npages));
}
BENCHMARK(BM_PageTableFaultStorm);

// ContentMap churn: the write/partial-erase/read/full-erase cycle a pool's
// content store sees as consolidated chunks come and go with keep-alive
// turnover.
void BM_ContentMapChurn(benchmark::State& state) {
  const uint64_t nchunks = 128;
  const uint64_t chunk = 512;
  for (auto _ : state) {
    ContentMap map;
    for (uint64_t i = 0; i < nchunks; ++i) {
      map.Write(i * chunk, chunk, static_cast<PageContent>(i * 100000));
    }
    for (uint64_t i = 1; i < nchunks; i += 2) {
      map.Erase(i * chunk + chunk / 4, chunk / 2);  // partial erase: two splits
    }
    for (uint64_t i = 0; i < nchunks; ++i) {
      benchmark::DoNotOptimize(map.Read(i * chunk + 7));
    }
    for (uint64_t i = 0; i < nchunks; ++i) {
      map.Erase(i * chunk, chunk);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(nchunks));
}
BENCHMARK(BM_ContentMapChurn);

// Full warm-restore cycle on the TrEnv engine: repurpose a pooled sandbox,
// restore process state, mmt_attach, run one invocation's page work, retire.
// This is the per-invocation unit the figure benches simulate millions of.
void BM_RestoreInvoke(benchmark::State& state) {
  Testbed bed(SystemKind::kTrEnvCxl);
  if (!bed.DeployTable4Functions().ok()) {
    state.SkipWithError("deploy failed");
    return;
  }
  FrameAllocator frames(64ULL * kGiB);
  PidAllocator pids;
  RestoreContext ctx;
  ctx.frames = &frames;
  ctx.backends = &bed.backends();
  ctx.pids = &pids;
  const FunctionProfile* profile = FindTable4Function("JS");
  for (auto _ : state) {
    auto outcome = bed.engine().Restore(*profile, ctx);
    if (!outcome.ok()) {
      state.SkipWithError("restore failed");
      return;
    }
    benchmark::DoNotOptimize(bed.engine().OnExecute(*profile, *outcome->instance, ctx));
    bed.engine().OnExecuteDone(*outcome->instance);
    bed.engine().Retire(std::move(outcome->instance), ctx);
  }
}
BENCHMARK(BM_RestoreInvoke);

// Working-set recording hot path: the PageRunSet absorbing a first
// invocation's touch stream. Two advancing frontiers of 64-page runs (the
// shape a warm restore's demand paging produces) plus a scatter of single
// pages that split and re-merge runs.
void BM_WorkingSetRecord(benchmark::State& state) {
  const uint64_t npages = BytesToPages(64 * kMiB);
  const uint64_t chunk = 64;
  const uint64_t nchunks = npages / chunk;
  for (auto _ : state) {
    PageRunSet set;
    for (uint64_t c = 0; c < nchunks; ++c) {
      const uint64_t idx = (c % 2 == 0) ? c / 2 : nchunks - 1 - c / 2;
      set.Add(idx * chunk, chunk);
    }
    for (uint64_t i = 0; i < 1024; ++i) {
      set.Add(npages + (i * 79) % 4096, 1);
    }
    benchmark::DoNotOptimize(set.pages());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(nchunks + 1024));
}
BENCHMARK(BM_WorkingSetRecord);

// Warm-restore cycle against an RDMA-homed template with working-set prefetch
// enabled: every Restore plans the recorded runs, maps them, and issues the
// coalesced bulk fetches through the engine's NIC queue; OnExecute then finds
// the pages resident. The first platform invocation (outside the timed loop)
// records the working set.
void BM_TrEnvBatchedPrefetch(benchmark::State& state) {
  PlatformConfig config;
  config.trenv_prefetch = true;
  Testbed bed(SystemKind::kTrEnvRdma, config);
  if (!bed.DeployTable4Functions().ok()) {
    state.SkipWithError("deploy failed");
    return;
  }
  (void)bed.platform().Run(Schedule{{SimTime::Zero(), "JS"}});
  bed.platform().EvictAllIdle();
  FrameAllocator frames(64ULL * kGiB);
  PidAllocator pids;
  RestoreContext ctx;
  ctx.frames = &frames;
  ctx.backends = &bed.backends();
  ctx.pids = &pids;
  const FunctionProfile* profile = FindTable4Function("JS");
  for (auto _ : state) {
    // Advance virtual time past the previous iteration's NIC window so each
    // restore sees an idle queue (steady state, not self-induced incast).
    ctx.now = ctx.now + SimDuration::Seconds(1);
    auto outcome = bed.engine().Restore(*profile, ctx);
    if (!outcome.ok()) {
      state.SkipWithError("restore failed");
      return;
    }
    benchmark::DoNotOptimize(bed.engine().OnExecute(*profile, *outcome->instance, ctx));
    bed.engine().OnExecuteDone(*outcome->instance);
    bed.engine().Retire(std::move(outcome->instance), ctx);
  }
}
BENCHMARK(BM_TrEnvBatchedPrefetch);

// Keep-alive churn: TakeWarm/Put cycles over 16 functions with periodic
// expiry sweeps — the park/reuse pattern every completed invocation drives.
void BM_KeepAliveChurn(benchmark::State& state) {
  KeepAlivePool pool(SimDuration::Minutes(10),
                     [](std::unique_ptr<FunctionInstance>) {});
  std::vector<std::string> functions;
  for (int i = 0; i < 16; ++i) {
    functions.push_back("fn-" + std::to_string(i));
  }
  SimTime now;
  for (const auto& fn : functions) {
    for (int i = 0; i < 4; ++i) {
      pool.Put(std::make_unique<FunctionInstance>(fn, nullptr), now);
    }
  }
  uint64_t hits = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      const std::string& fn = functions[(static_cast<size_t>(i) * 7) % functions.size()];
      now = now + SimDuration::Millis(1);
      auto inst = pool.TakeWarm(fn);
      if (inst != nullptr) {
        ++hits;
        pool.Put(std::move(inst), now);
      }
      if (i % 64 == 0) {
        pool.ExpireStale(now - SimDuration::Minutes(5));
      }
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_KeepAliveChurn);

void BM_SnapshotDedupIngest(benchmark::State& state) {
  Checkpointer checkpointer;
  FunctionProfile profile;
  profile.name = "bench-fn";
  profile.language = "python";
  profile.image_bytes = 128 * kMiB;
  uint64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    CxlPool cxl(8ULL * kGiB);
    TieredPool tiered;
    tiered.AddTier(&cxl);
    SnapshotDedupStore store(&tiered);
    profile.name = "bench-fn" + std::to_string(i++);
    FunctionSnapshot snapshot = checkpointer.Checkpoint(profile);
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.Store(snapshot));
  }
}
BENCHMARK(BM_SnapshotDedupIngest);

// Full event lifecycle — schedule 1000 timers at interleaved deadlines, then
// dispatch them all. This is what every simulated invocation pays per event:
// one ScheduleAt/ScheduleAfter plus one dispatch.
void BM_EventSchedulerDispatch(benchmark::State& state) {
  EventScheduler sched;
  int sink = 0;
  for (auto _ : state) {
    const SimTime base = sched.now();
    for (int i = 0; i < 1000; ++i) {
      // Interleaved deadlines (not arrival order) so the queue really sorts.
      sched.ScheduleAt(base + SimDuration::Micros((i * 37) % 1000), [&sink] { ++sink; });
    }
    sched.RunUntilIdle();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventSchedulerDispatch);

// Keep-alive churn: platform.cc re-arms expiry timers on every completion
// (schedule, later cancel, reschedule — 8 call sites feed this pattern), so
// most scheduled events never run. 64 outstanding timers, 2000 re-arms per
// iteration, periodic clock advances between them.
void BM_EventSchedulerChurn(benchmark::State& state) {
  EventScheduler sched;
  int sink = 0;
  std::vector<EventId> expiry(64, kInvalidEventId);
  for (auto _ : state) {
    for (int i = 0; i < 2000; ++i) {
      const size_t slot = static_cast<size_t>(i) % expiry.size();
      if (expiry[slot] != kInvalidEventId) {
        sched.Cancel(expiry[slot]);
      }
      expiry[slot] = sched.ScheduleAfter(SimDuration::Minutes(10), [&sink] { ++sink; });
      if (i % 16 == 0) {
        sched.RunUntil(sched.now() + SimDuration::Millis(50));
      }
    }
    sched.RunUntilIdle();
    expiry.assign(expiry.size(), kInvalidEventId);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_EventSchedulerChurn);

void BM_FairShareCpuChurn(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    EventScheduler sched;
    FairShareCpu cpu(&sched, 16);
    state.ResumeTiming();
    for (int i = 0; i < 200; ++i) {
      cpu.Submit(SimDuration::Millis(5 + i % 7), [] {});
    }
    sched.RunUntilIdle();
  }
}
BENCHMARK(BM_FairShareCpuChurn);

// Collects per-benchmark results while delegating display to the console
// reporter, so the run can be appended to the BENCH_micro.json trajectory.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double real_ns = 0;
    double cpu_ns = 0;
    int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      Entry entry;
      entry.name = run.benchmark_name();
      entry.real_ns = run.GetAdjustedRealTime();
      entry.cpu_ns = run.GetAdjustedCPUTime();
      entry.iterations = run.iterations;
      entries_.push_back(std::move(entry));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

std::string JsonEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

std::string UtcNow() {
  char buf[32];
  const std::time_t t = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&t, &tm_utc);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

// Appends one JSON-lines record: {"utc":...,"label":...,"benchmarks":{name:
// {"real_ns":...,"cpu_ns":...,"iterations":...}}}.
bool AppendJsonRecord(const std::string& path, const std::string& label,
                      const std::vector<CollectingReporter::Entry>& entries) {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    return false;
  }
  out << "{\"utc\":\"" << UtcNow() << "\",\"label\":\"" << JsonEscape(label)
      << "\",\"host\":" << bench::HostJson(std::thread::hardware_concurrency())
      << ",\"benchmarks\":{";
  bool first = true;
  for (const auto& entry : entries) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << JsonEscape(entry.name) << "\":{\"real_ns\":" << entry.real_ns
        << ",\"cpu_ns\":" << entry.cpu_ns << ",\"iterations\":" << entry.iterations << "}";
  }
  out << "}}\n";
  return static_cast<bool>(out);
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  std::string json_path = "BENCH_micro.json";
  std::string label;
  // Peel off our flags; everything else goes to google-benchmark (which
  // rejects unknown flags itself).
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--bench-json=", 0) == 0) {
      json_path = std::string(arg.substr(13));
    } else if (arg.rfind("--bench-label=", 0) == 0) {
      label = std::string(arg.substr(14));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  trenv::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !reporter.entries().empty()) {
    if (trenv::AppendJsonRecord(json_path, label, reporter.entries())) {
      std::cout << "appended record to " << json_path << "\n";
    } else {
      std::cerr << "failed to append record to " << json_path << "\n";
      return 1;
    }
  }
  return 0;
}
