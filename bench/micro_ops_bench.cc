// Micro-operation benchmarks (google-benchmark): throughput of the hot
// simulator primitives — page-table bulk faults, mm-template attach, dedup
// ingestion, DES event dispatch. These guard the simulator's own
// performance; the paper-figure benches above depend on them being fast.
#include <benchmark/benchmark.h>

#include "src/criu/deduplicator.h"
#include "src/criu/checkpointer.h"
#include "src/mempool/cxl_pool.h"
#include "src/mmtemplate/api.h"
#include "src/sim/cpu.h"
#include "src/simkernel/fault_handler.h"

namespace trenv {
namespace {

void BM_PageTableMapLookup(benchmark::State& state) {
  PageTable table;
  PteFlags flags;
  flags.valid = true;
  uint64_t i = 0;
  for (auto _ : state) {
    table.MapRange((i % 1024) * 16, 16, flags, i * 16, i);
    benchmark::DoNotOptimize(table.Lookup((i % 1024) * 16 + 7));
    ++i;
  }
}
BENCHMARK(BM_PageTableMapLookup);

void BM_BulkCowFault64MiB(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    FrameAllocator frames(4ULL * kGiB);
    CxlPool cxl(4ULL * kGiB);
    BackendRegistry backends;
    backends.Register(&cxl);
    FaultHandler handler(&frames, &backends);
    MmStruct mm;
    const uint64_t npages = BytesToPages(64 * kMiB);
    (void)mm.AddVma(MakeAnonVma(0x10000000, npages * kPageSize, Protection::ReadWrite(), "img"));
    auto base = cxl.AllocatePages(npages);
    (void)cxl.WriteContent(*base, npages, 1);
    PteFlags flags;
    flags.valid = true;
    flags.write_protected = true;
    flags.pool = PoolKind::kCxl;
    mm.page_table().MapRange(AddrToVpn(0x10000000), npages, flags, *base, 1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(handler.AccessRange(mm, 0x10000000, npages, true));
  }
}
BENCHMARK(BM_BulkCowFault64MiB);

void BM_MmtAttach855MiB(benchmark::State& state) {
  CxlPool cxl(8ULL * kGiB);
  BackendRegistry backends;
  backends.Register(&cxl);
  MmtApi api(&backends);
  const uint64_t npages = BytesToPages(855 * kMiB);
  MmtId id = api.MmtCreate("ir");
  (void)api.MmtAddMap(id, 0x10000000, npages * kPageSize, Protection::ReadWrite(), true, -1, 0);
  auto base = cxl.AllocatePages(npages);
  (void)cxl.WriteContent(*base, npages, 7);
  (void)api.MmtSetupPt(id, 0x10000000, npages * kPageSize, *base, PoolKind::kCxl);
  for (auto _ : state) {
    MmStruct mm;
    benchmark::DoNotOptimize(api.MmtAttach(id, &mm));
  }
}
BENCHMARK(BM_MmtAttach855MiB);

void BM_SnapshotDedupIngest(benchmark::State& state) {
  Checkpointer checkpointer;
  FunctionProfile profile;
  profile.name = "bench-fn";
  profile.language = "python";
  profile.image_bytes = 128 * kMiB;
  uint64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    CxlPool cxl(8ULL * kGiB);
    TieredPool tiered;
    tiered.AddTier(&cxl);
    SnapshotDedupStore store(&tiered);
    profile.name = "bench-fn" + std::to_string(i++);
    FunctionSnapshot snapshot = checkpointer.Checkpoint(profile);
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.Store(snapshot));
  }
}
BENCHMARK(BM_SnapshotDedupIngest);

void BM_EventSchedulerDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    EventScheduler sched;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sched.ScheduleAt(SimTime(i), [&sink] { ++sink; });
    }
    state.ResumeTiming();
    sched.RunUntilIdle();
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_EventSchedulerDispatch);

void BM_FairShareCpuChurn(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    EventScheduler sched;
    FairShareCpu cpu(&sched, 16);
    state.ResumeTiming();
    for (int i = 0; i < 200; ++i) {
      cpu.Submit(SimDuration::Millis(5 + i % 7), [] {});
    }
    sched.RunUntilIdle();
  }
}
BENCHMARK(BM_FairShareCpuChurn);

}  // namespace
}  // namespace trenv

BENCHMARK_MAIN();
