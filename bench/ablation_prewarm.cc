// Ablation: prediction-based pre-warming vs TrEnv (paper section 10).
// "TrEnv takes a different approach by directly reducing cold start
// overhead, thereby eliminating the need for designing those complex
// strategies." This bench quantifies that: a histogram keep-alive/pre-warm
// policy (Shahrad et al.) on top of CRIU, against plain TrEnv, on a
// workload mixing predictable periodic traffic with unpredictable bursts.
#include <iostream>

#include "bench/bench_util.h"
#include "src/platform/prewarm.h"

namespace trenv {
namespace {

Schedule MixedWorkload(Rng& rng) {
  Schedule schedule;
  // Predictable: JS fires every 12 minutes like clockwork (cron-style),
  // just past the keep-alive TTL.
  for (int i = 0; i < 12; ++i) {
    schedule.push_back({SimTime::Zero() + SimDuration::Minutes(12 * i), "JS"});
  }
  // Unpredictable: bursts of DH/CR/IR at Pareto-distributed gaps.
  double t = 120;
  while (t < 150.0 * 60) {
    const char* fn = (rng.NextBounded(3) == 0) ? "IR" : (rng.NextBool(0.5) ? "DH" : "CR");
    for (int k = 0; k < 6; ++k) {
      schedule.push_back(
          {SimTime::Zero() + SimDuration::FromSecondsF(t + rng.NextUniform(0, 2)), fn});
    }
    t += 60.0 + rng.NextPareto(120.0, 1.1);
  }
  SortSchedule(schedule);
  return schedule;
}

struct RunResult {
  double p99_ms = 0;
  double mean_ms = 0;
  uint64_t cold = 0;
  uint64_t warm = 0;
  uint64_t prewarmed = 0;
  double peak_gib = 0;
};

RunResult RunOne(SystemKind kind, bool with_prewarm, const Schedule& schedule) {
  PrewarmPolicy policy;
  PlatformConfig config;
  if (with_prewarm) {
    config.prewarm = &policy;
  }
  Testbed bed(kind, config);
  (void)bed.DeployTable4Functions();
  (void)bed.platform().Run(schedule);
  const FunctionMetrics agg = bed.platform().metrics().Aggregate();
  RunResult result;
  result.p99_ms = agg.e2e_ms.P99();
  result.mean_ms = agg.e2e_ms.Mean();
  result.cold = agg.cold_starts;
  result.warm = agg.warm_starts;
  result.prewarmed = agg.prewarm_starts;
  result.peak_gib = static_cast<double>(bed.platform().metrics().peak_memory_bytes()) /
                    static_cast<double>(kGiB);
  return result;
}

void Run(bench::BenchEnv& env) {
  PrintBanner(std::cout, "Ablation: prediction-based pre-warming vs TrEnv");
  Rng rng(1717);
  Schedule schedule = MixedWorkload(rng);
  std::cout << "Workload: " << schedule.size()
            << " invocations (periodic JS + Pareto bursts of DH/CR/IR)\n";

  Table table({"System", "P99 (ms)", "mean (ms)", "cold", "warm", "prewarmed", "peak GiB"});
  struct Config {
    SystemKind kind;
    bool prewarm;
    const char* label;
  };
  const Config configs[] = {{SystemKind::kCriu, false, "CRIU (fixed keep-alive)"},
                            {SystemKind::kCriu, true, "CRIU + histogram pre-warm"},
                            {SystemKind::kTrEnvCxl, false, "T-CXL (no prediction)"}};
  // The three configurations are independent simulations — one ParallelSweep.
  std::vector<RunResult> results =
      bench::ParallelSweep(std::size(configs), env.jobs, [&](size_t i) {
        return RunOne(configs[i].kind, configs[i].prewarm, schedule);
      });
  for (size_t i = 0; i < std::size(configs); ++i) {
    const RunResult& r = results[i];
    table.AddRow({configs[i].label, Table::Num(r.p99_ms), Table::Num(r.mean_ms),
                  std::to_string(r.cold), std::to_string(r.warm), std::to_string(r.prewarmed),
                  Table::Num(r.peak_gib, 2)});
  }
  table.Print(std::cout);
  std::cout << "Expected shape: pre-warming rescues the periodic function but not the\n"
               "Pareto bursts, and it pays for predictions with resident memory; TrEnv\n"
               "gets burst latency down without prediction machinery.\n";
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  trenv::bench::BenchEnv env(argc, argv);
  trenv::Run(env);
  env.Finish();
  return 0;
}
