// Figure 22: normalized execution latency of T-CXL vs T-RDMA (P75 and P99),
// plus the tiered (CXL-hot + RDMA-cold) configuration of section 9.5. The
// three system runs are independent and execute as one ParallelSweep.
#include <iostream>

#include "bench/bench_util.h"

namespace trenv {
namespace {

const SystemKind kSystems[] = {SystemKind::kTrEnvCxl, SystemKind::kTrEnvRdma,
                               SystemKind::kTrEnvTiered};

void Run(bench::BenchEnv& env) {
  PrintBanner(std::cout, "Figure 22: T-CXL vs T-RDMA execution latency (P75 / P99)");
  Rng rng(99);
  // Steady moderate load: enough concurrency to stress the RDMA fabric.
  Schedule schedule =
      MakePoissonWorkload(bench::Table4Names(), 6.0, SimDuration::Minutes(12), 0.3, rng);

  // The memory pool matters on freshly restored instances (warm instances
  // have localized their pages); a 1 s keep-alive makes every measured
  // invocation a fresh attach, as in the paper's burst-dominated runs.
  PlatformConfig config;
  config.keep_alive_ttl = SimDuration::Seconds(1);
  using ExecByFn = std::map<std::string, Histogram>;
  std::vector<ExecByFn> per_system =
      bench::ParallelSweep(std::size(kSystems), env.jobs, [&](size_t i) {
        auto run = bench::RunContainerWorkload(kSystems[i], schedule, config,
                                               bench::Table4Names());
        ExecByFn hists;
        for (const auto& [fn, metrics] : run.bed->platform().metrics().per_function()) {
          hists[fn] = metrics.exec_ms;
        }
        return hists;
      });
  std::map<std::string, std::map<std::string, Histogram>> exec;  // system -> fn -> hist
  for (size_t i = 0; i < std::size(kSystems); ++i) {
    exec[SystemName(kSystems[i])] = std::move(per_system[i]);
  }

  Table table({"Func", "T-CXL p75", "T-RDMA p75", "p75 speedup", "T-CXL p99", "T-RDMA p99",
               "p99 speedup", "T-Tiered p99"});
  for (const auto& fn : bench::Table4Names()) {
    auto& cxl = exec["T-CXL"][fn];
    auto& rdma = exec["T-RDMA"][fn];
    auto& tiered = exec["T-Tiered"][fn];
    if (cxl.empty() || rdma.empty()) {
      continue;
    }
    table.AddRow({fn, Table::Num(cxl.Percentile(75)), Table::Num(rdma.Percentile(75)),
                  Table::Num(rdma.Percentile(75) / cxl.Percentile(75), 2) + "x",
                  Table::Num(cxl.P99()), Table::Num(rdma.P99()),
                  Table::Num(rdma.P99() / cxl.P99(), 2) + "x",
                  tiered.empty() ? "-" : Table::Num(tiered.P99())});
  }
  table.Print(std::cout);
  std::cout << "Paper reference: T-CXL is 1.04x-3.51x faster at P75 and more at P99 "
               "(RDMA's tail inflates under load); CXL byte-addressability avoids all "
               "read faults.\n";
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  trenv::bench::BenchEnv env(argc, argv);
  trenv::Run(env);
  env.Finish();
  return 0;
}
