// Figure 20: P99 E2E latency under the Azure-like and Huawei-like industry
// traces, normalized against REAP+, split into startup + execution.
#include <iostream>

#include "bench/bench_util.h"

namespace trenv {
namespace {

void RunTrace(const std::string& label, const Schedule& schedule) {
  PrintBanner(std::cout, "Figure 20 (" + label + "): P99 E2E normalized to REAP+");
  const SystemKind systems[] = {SystemKind::kReapPlus, SystemKind::kFaasnapPlus,
                                SystemKind::kTrEnvCxl, SystemKind::kTrEnvRdma};
  // fn -> system -> (p99 e2e, p99 startup)
  std::map<std::string, std::map<std::string, std::pair<double, double>>> results;
  for (SystemKind kind : systems) {
    auto run = bench::RunContainerWorkload(kind, schedule, PlatformConfig{},
                                           bench::Table4Names());
    for (const auto& [fn, metrics] : run.bed->platform().metrics().per_function()) {
      if (metrics.e2e_ms.empty()) {
        continue;
      }
      results[fn][SystemName(kind)] = {metrics.e2e_ms.P99(), metrics.startup_ms.P99()};
    }
  }

  Table table({"Func", "REAP+ p99", "FaaSnap+ rel", "T-CXL rel", "T-RDMA rel",
               "T-CXL speedup", "T-CXL startup share"});
  for (const auto& [fn, by_system] : results) {
    auto reap_it = by_system.find("REAP+");
    auto tcxl_it = by_system.find("T-CXL");
    if (reap_it == by_system.end() || tcxl_it == by_system.end()) {
      continue;
    }
    const double reap = reap_it->second.first;
    auto rel = [&](const std::string& name) {
      auto it = by_system.find(name);
      return it == by_system.end() ? std::string("-")
                                   : Table::Num(it->second.first / reap, 2);
    };
    table.AddRow({fn, Table::Num(reap), rel("FaaSnap+"), rel("T-CXL"), rel("T-RDMA"),
                  Table::Num(reap / tcxl_it->second.first, 2) + "x",
                  Table::Pct(tcxl_it->second.second / tcxl_it->second.first)});
  }
  table.Print(std::cout);
}

void Run() {
  Rng rng(5150);
  RunTrace("Azure-like", MakeAzureLikeWorkload(bench::Table4Names(), rng));
  RunTrace("Huawei-like", MakeHuaweiLikeWorkload(bench::Table4Names(), rng));
  std::cout << "\nPaper reference: T-CXL achieves 1.06x-7.00x (Azure) and 1.16x-9.25x "
               "(Huawei) P99 speedups vs REAP+/FaaSnap+; T-RDMA can fall behind on "
               "heavy-load functions (JS, VP, CH, CR, PR) due to RDMA tail latency.\n";
}

}  // namespace
}  // namespace trenv

int main() {
  trenv::Run();
  return 0;
}
