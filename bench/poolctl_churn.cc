// Continuous pool control plane under adversarial churn: 16-64 pool nodes.
//
// Every run is an 8-worker rack whose template store spans {16,32,64} pool
// nodes, driven by the same fixed-seed Poisson workload while the fault plan
// churns the fleet: a rolling-restart wave (every 4th pool node dies in
// sequence and returns 15 s later), one long outage (a node that never comes
// back), and two RDMA flap storms that eat heartbeats — the
// flapping-membership schedule that manufactures false suspicions.
//
// Each fleet size runs twice: `static` keeps the legacy single-shot wiring
// (instant crash knowledge, one delayed rebalance sweep per change) and
// `continuous` runs the poolctl control plane (gossip membership with
// phi-accrual suspicion, budgeted continuous rebalancing, NIC admission
// shedding, hot-shard mitigation).
//
// Gates (exit 1 on violation):
//   * Zero accepted-invocation loss on EVERY run — churn may slow attaches
//     (dead-read timeouts, NAS fallback) but never drops accepted work.
//   * Continuous runs end with zero under-replicated shards: replication is
//     restored by trace end by the budgeted loop itself (the drain performs
//     no final converge).
//   * Continuous runs declare >= 1 death and complete >= 1 rejoin — the
//     schedule actually exercises the membership machine.
//   * Hot-shard section: with a skewed single-template hammer at replication
//     1, mitigation (score-driven extra replicas + spread reads) must cut
//     the peak per-node lease traffic by >= 2x vs static replication.
//
// The report is byte-identical at any --jobs and --shards value (runs are
// self-contained; all randomness is seeded), which CI enforces with cmp.
//
// Flags:
//   --jobs=N            sweep threads; the report is byte-identical at any N
//   --shards=N          sharded cluster execution (byte-identical)
//   --bench-json=PATH   append a JSON-lines record to the BENCH trajectory
//   --bench-label=TEXT  label stored in the JSON record
#include <cstdint>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "src/fault/fault_schedule.h"
#include "src/mempool/rdma_pool.h"
#include "src/platform/cluster.h"
#include "src/poolctl/control_plane.h"

namespace trenv {
namespace {

constexpr uint64_t kSeed = 42;
constexpr uint32_t kWorkers = 8;
constexpr double kPagesPerMiB = 256.0;  // 4 KiB pages
constexpr uint64_t kRebalanceBudget = 32768;  // pages per 500 ms tick

SimTime Sec(double seconds) {
  return SimTime::Zero() + SimDuration::FromMicrosF(seconds * 1e6);
}

Schedule ChurnWorkload() {
  Rng rng(kSeed ^ 0x9001);
  return MakePoissonWorkload({"JS", "DH", "IR", "CR"}, 8.0, SimDuration::Minutes(2), 0.3,
                             rng);
}

// Rolling restarts + one long outage + heartbeat-eating flap storms.
FaultSchedule ChurnFaults(uint32_t pool_nodes) {
  FaultSchedule faults;
  faults.seed = kSeed;
  // Rolling-restart wave: every 4th pool node dies in sequence, 3 s apart,
  // each returning 15 s later — long enough past phi_dead (4 s of silence)
  // that every crash is declared, every return is a rejoin, and several
  // nodes are down concurrently at the larger fleet sizes.
  uint32_t wave = 0;
  for (uint32_t node = 0; node < pool_nodes; node += 4, ++wave) {
    const SimTime start = Sec(10.0 + 3.0 * wave);
    faults.Add(PoolCrashWindow(start, start + SimDuration::Seconds(1), /*probability=*/1.0,
                               node, /*restart_after=*/SimDuration::Seconds(15)));
  }
  // One long outage: pool node 1 (not in the wave) dies at t=70s and never
  // returns — the survivors must absorb its shards for the rest of the run.
  faults.Add(PoolCrashWindow(Sec(70.0), Sec(71.0), /*probability=*/1.0, /*pool_node=*/1,
                             /*restart_after=*/SimDuration::Zero()));
  // Flapping membership: two RDMA flap storms eat heartbeats fleet-wide
  // (and fail fetch attempts, exercising the retry path). The first lands
  // mid-wave; the second hits a healthy fleet to manufacture pure false
  // suspicions.
  faults.Add(LinkFaultWindow(FaultDomain::kRdmaFlap, Sec(30.0), Sec(34.0),
                             /*probability=*/0.7));
  faults.Add(LinkFaultWindow(FaultDomain::kRdmaFlap, Sec(95.0), Sec(98.0),
                             /*probability=*/0.5));
  return faults;
}

struct ChurnResult {
  bool ok = false;
  uint64_t accepted = 0;
  uint64_t completed = 0;
  uint64_t deaths = 0;
  uint64_t false_suspicions = 0;
  uint64_t rejoins = 0;
  uint64_t moved_pages = 0;
  uint64_t shed = 0;
  uint64_t nas_pages = 0;
  uint64_t dead_hops = 0;
  uint64_t revoked = 0;
  uint64_t under_replicated = 0;
  double attach_p99_ms = 0;
  double e2e_p99_ms = 0;
};

ChurnResult RunChurn(uint32_t pool_nodes, bool continuous, uint32_t shards) {
  ClusterConfig config;
  config.nodes = kWorkers;
  config.dispatch = ClusterConfig::Dispatch::kTemplateLocality;
  config.poolmgr.enabled = true;
  config.poolmgr.pool_nodes = pool_nodes;
  config.poolmgr.replication = 2;
  config.poolctl.enabled = continuous;
  config.poolctl.rebalance_budget_pages = kRebalanceBudget;
  config.faults = ChurnFaults(pool_nodes);
  Cluster cluster(config);
  if (!cluster.DeployTable4Functions().ok()) {
    return {};
  }
  if (!bench::RunCluster(cluster, ChurnWorkload(), shards).ok()) {
    return {};
  }
  ChurnResult r;
  r.ok = true;
  const PoolManager& mgr = *cluster.pool_manager();
  const FunctionMetrics agg = cluster.AggregateMetrics();
  r.accepted = cluster.accepted_invocations();
  r.completed = agg.invocations;
  r.moved_pages = mgr.rebalanced_pages();
  r.shed = mgr.shed_attaches();
  r.nas_pages = mgr.nas_fallback_pages();
  r.dead_hops = mgr.dead_read_hops();
  r.revoked = mgr.leases_revoked();
  r.under_replicated = mgr.UnderReplicatedShards();
  if (!mgr.attach_ms().empty()) {
    r.attach_p99_ms = mgr.attach_ms().P99();
  }
  r.e2e_p99_ms = agg.e2e_ms.P99();
  if (cluster.pool_control() != nullptr) {
    const GossipMembership& membership = cluster.pool_control()->membership();
    r.deaths = membership.deaths();
    r.false_suspicions = membership.false_suspicions();
    r.rejoins = membership.rejoins();
  }
  return r;
}

// --------------------------------------------------------------- hot shards
//
// One template, replication 1, hammered from every worker with a short lease
// TTL so each round is a fresh miss. Static replication funnels every fetch
// of a shard into its single primary; mitigation promotes extra replicas
// from the observed fetch score and spread reads fan the same traffic across
// them. The gate compares the hottest node's served pages.

constexpr uint32_t kHotPoolNodes = 16;
constexpr uint32_t kHotWorkers = 16;
constexpr int kHotRounds = 600;  // 30 s of 50 ms rounds

ConsolidatedImage HotImage() {
  // One chunk == one shard: the entire template is THE hot shard, so static
  // replication funnels every fetch into its single primary.
  ConsolidatedImage image;
  PlacedRegion placed;
  placed.chunks.push_back(PlacedChunk{PoolKind::kCxl, 0, 512, 0xA07ULL});
  image.processes.push_back({placed});
  image.total_pages = 512;
  return image;
}

struct HotResult {
  uint64_t peak_pages = 0;
  uint64_t total_pages = 0;
  uint64_t promotions = 0;
  uint64_t demotions = 0;
};

HotResult RunHotShard(bool mitigation) {
  RdmaPool fabric(kGiB);
  PoolManagerConfig pool;
  pool.enabled = true;
  pool.pool_nodes = kHotPoolNodes;
  pool.replication = 1;
  pool.lease_ttl = SimDuration::Millis(40);  // every 50 ms round is a miss
  PoolManager mgr(pool, kHotWorkers, &fabric, nullptr);
  PoolCtlConfig ctl;
  ctl.hot_shard_mitigation = mitigation;
  ctl.hot_promote_score = 16;
  ctl.max_extra_replicas = 7;  // a hammered shard may grow to 8 replicas
  ctl.rebalance_budget_pages = kRebalanceBudget;
  if (!mitigation) {
    ctl.policy.spread_reads = false;  // static replication reads the primary
  }
  PoolControlPlane plane(ctl, &mgr, /*faults=*/nullptr, /*stats=*/nullptr,
                         /*tracer=*/nullptr);
  plane.Start(SimTime::Zero());
  mgr.RegisterTemplate(0, HotImage());
  SimTime t = SimTime::Zero();
  for (int round = 1; round <= kHotRounds; ++round) {
    t = SimTime::Zero() + SimDuration::Millis(50) * round;
    mgr.clock().RunUntil(t);
    for (uint32_t worker = 0; worker < kHotWorkers; ++worker) {
      (void)mgr.Attach(worker, 0, t);
    }
  }
  plane.Quiesce();
  mgr.clock().RunUntilIdle();
  HotResult r;
  r.peak_pages = mgr.PeakServedPages();
  for (const uint64_t pages : mgr.ServedPagesPerNode()) {
    r.total_pages += pages;
  }
  r.promotions = plane.hot_promotions();
  r.demotions = plane.hot_demotions();
  return r;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

std::string UtcNow() {
  char buf[32];
  const std::time_t t = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&t, &tm_utc);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

int RunBench(bench::BenchEnv& env) {
  const uint32_t shards =
      static_cast<uint32_t>(std::atoi(env.ExtraValue("--shards=", "1").c_str()));
  std::cout << "=== Continuous pool control under churn: rolling restarts + long outage "
               "+ flap storms ===\n";

  const std::vector<uint32_t> fleets = {16, 32, 64};
  struct Point {
    uint32_t pool_nodes;
    bool continuous;
  };
  std::vector<Point> points;
  for (const uint32_t pool_nodes : fleets) {
    points.push_back({pool_nodes, false});
    points.push_back({pool_nodes, true});
  }
  const std::vector<ChurnResult> sweep = bench::ParallelSweep(
      points.size(), env.jobs,
      [&](size_t i) { return RunChurn(points[i].pool_nodes, points[i].continuous, shards); });

  Table table({"Pool nodes", "Mode", "Accepted", "Completed", "Deaths", "FalseSusp",
               "Rejoins", "Moved MiB", "Shed", "NAS MiB", "UnderRepl", "Attach p99 ms"});
  for (size_t i = 0; i < points.size(); ++i) {
    const ChurnResult& r = sweep[i];
    if (!r.ok) {
      std::cerr << "churn run " << i << " failed\n";
      return 1;
    }
    table.AddRow({std::to_string(points[i].pool_nodes),
                  points[i].continuous ? "continuous" : "static", std::to_string(r.accepted),
                  std::to_string(r.completed), std::to_string(r.deaths),
                  std::to_string(r.false_suspicions), std::to_string(r.rejoins),
                  Table::Num(static_cast<double>(r.moved_pages) / kPagesPerMiB, 1),
                  std::to_string(r.shed),
                  Table::Num(static_cast<double>(r.nas_pages) / kPagesPerMiB, 1),
                  std::to_string(r.under_replicated), Table::Num(r.attach_p99_ms, 3)});
  }
  table.Print(std::cout);

  bool gates_ok = true;
  for (size_t i = 0; i < points.size(); ++i) {
    const ChurnResult& r = sweep[i];
    const char* mode = points[i].continuous ? "continuous" : "static";
    if (r.accepted != r.completed) {
      std::cerr << "FAIL: n=" << points[i].pool_nodes << " " << mode
                << " lost invocations: accepted " << r.accepted << " completed "
                << r.completed << "\n";
      gates_ok = false;
    }
    if (!points[i].continuous) {
      continue;
    }
    if (r.under_replicated != 0) {
      std::cerr << "FAIL: n=" << points[i].pool_nodes
                << " continuous ended with " << r.under_replicated
                << " under-replicated shard(s)\n";
      gates_ok = false;
    }
    if (r.deaths == 0 || r.rejoins == 0) {
      std::cerr << "FAIL: n=" << points[i].pool_nodes
                << " continuous never exercised the membership machine (deaths="
                << r.deaths << " rejoins=" << r.rejoins << ")\n";
      gates_ok = false;
    }
  }
  if (!gates_ok) {
    return 1;
  }
  std::cout << "Zero accepted-invocation loss on every run; continuous fleets end fully "
               "replicated with every declared death rejoined or absorbed.\n\n";

  std::cout << "=== Hot-shard mitigation: one hammered template, replication 1, "
            << kHotPoolNodes << " pool nodes ===\n";
  const std::vector<HotResult> hot =
      bench::ParallelSweep(2, env.jobs, [&](size_t i) { return RunHotShard(i == 1); });
  const HotResult& flat = hot[0];
  const HotResult& mitigated = hot[1];
  Table hot_table({"Mode", "Peak node MiB", "Total MiB", "Promotions", "Demotions"});
  hot_table.AddRow({"static r=1",
                    Table::Num(static_cast<double>(flat.peak_pages) / kPagesPerMiB, 1),
                    Table::Num(static_cast<double>(flat.total_pages) / kPagesPerMiB, 1),
                    std::to_string(flat.promotions), std::to_string(flat.demotions)});
  hot_table.AddRow({"mitigated",
                    Table::Num(static_cast<double>(mitigated.peak_pages) / kPagesPerMiB, 1),
                    Table::Num(static_cast<double>(mitigated.total_pages) / kPagesPerMiB, 1),
                    std::to_string(mitigated.promotions), std::to_string(mitigated.demotions)});
  hot_table.Print(std::cout);
  const double ratio = mitigated.peak_pages == 0
                           ? 0.0
                           : static_cast<double>(flat.peak_pages) /
                                 static_cast<double>(mitigated.peak_pages);
  std::cout << "Peak per-node lease traffic cut " << Table::Num(ratio, 2)
            << "x by hot-shard mitigation (gate: >= 2x)\n";
  if (ratio < 2.0) {
    std::cerr << "FAIL: hot-shard mitigation cut peak traffic only "
              << Table::Num(ratio, 2) << "x (< 2x)\n";
    return 1;
  }

  const std::string json_path = env.ExtraValue("--bench-json=");
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::app);
    if (!out) {
      std::cerr << "failed to append record to " << json_path << "\n";
      return 1;
    }
    out << "{\"utc\":\"" << UtcNow() << "\",\"label\":\""
        << JsonEscape(env.ExtraValue("--bench-label=")) << "\",\"host\":"
        << bench::HostJson(env.jobs) << ",\"benchmarks\":{";
    for (size_t i = 0; i < points.size(); ++i) {
      const ChurnResult& r = sweep[i];
      out << "\"poolctl_churn/n" << points[i].pool_nodes << "_"
          << (points[i].continuous ? "continuous" : "static")
          << "\":{\"accepted\":" << r.accepted << ",\"completed\":" << r.completed
          << ",\"deaths\":" << r.deaths << ",\"rejoins\":" << r.rejoins
          << ",\"moved_pages\":" << r.moved_pages
          << ",\"under_replicated\":" << r.under_replicated
          << ",\"real_ns\":" << static_cast<uint64_t>(r.attach_p99_ms * 1e6) << "},";
    }
    out << "\"poolctl_churn/hot_shard\":{\"peak_static\":" << flat.peak_pages
        << ",\"peak_mitigated\":" << mitigated.peak_pages << ",\"ratio\":"
        << Table::Num(ratio, 3) << "}}}\n";
    if (!out) {
      std::cerr << "failed to append record to " << json_path << "\n";
      return 1;
    }
    std::cout << "appended record to " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  trenv::bench::BenchEnv env(argc, argv,
                             {{"--bench-json=", "--bench-json=<file>"},
                              {"--bench-label=", "--bench-label=<text>"},
                              {"--shards=", "--shards=<n>"}});
  const int rc = trenv::RunBench(env);
  env.Finish();
  return rc;
}
