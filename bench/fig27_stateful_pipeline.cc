// Stateful pipelines over the shared-state data plane (fig. 27): end-to-end
// latency and handoff traffic for N-stage chains and fan-out/fan-in DAGs
// under three payload data planes.
//
//   trenv-shared   payloads live in writable pool regions (src/shstate/);
//                  chain edges hand off by ownership transfer (metadata-only
//                  unless the region migrates between pool homes), fan-out
//                  consumers read straight from the pool through leased
//                  reader mappings, fan-in writes revoke them.
//   copy-worker    every edge serializes the payload out of the producer
//                  sandbox and into the consumer sandbox over the worker
//                  NICs: two full crossings per edge.
//   nas-roundtrip  every edge persists to NAS and reads back: two crossings
//                  at NAS bandwidth.
//
// "Handoff MiB" counts fabric bytes moved to pass payloads between stages.
// For trenv-shared that is pool-to-pool migrations only — owner stores and
// reader loads ride the memory-attached CXL path, reported separately as
// pool-write / refetch traffic. The sweep crosses nodes {2,4,8} x shape
// {chain4, fan4} x data plane; all three planes run the identical arrival
// schedule per cell.
//
// Checked claims (exit 1 on violation):
//   * every accepted stage invocation completes and every job finishes;
//   * at >= 4 nodes the 4-stage chain moves >= 5x fewer handoff bytes under
//     trenv-shared than copy-worker;
//   * crash drill: a worker node dies mid-run while owning live regions;
//     lease-based recovery (vacant ownership re-acquired from the durable
//     pool copy) completes every accepted invocation with zero loss and
//     at least one ownership recovery.
//
// Flags:
//   --jobs=N            sweep threads; the report is byte-identical at any N
//   --shards=N          accepted for CI parity; the pipeline driver
//                       interleaves its own action queue with the cluster
//                       clocks and always runs the sequential core, so the
//                       report is byte-identical at any value
//   --bench-json=PATH   append a JSON-lines record to the BENCH trajectory
//   --bench-label=TEXT  label stored in the JSON record
#include <cstdint>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/fault/fault_schedule.h"
#include "src/platform/cluster.h"
#include "src/shstate/pipeline_driver.h"
#include "src/workload/pipeline.h"

namespace trenv {
namespace {

constexpr uint64_t kSeed = 27;
constexpr uint64_t kPayloadPages = 256;  // 1 MiB per edge
constexpr uint32_t kJobsPerRun = 48;
constexpr double kJobRatePerSec = 30.0;

enum class Shape : uint8_t { kChain4, kFan4 };

const char* ShapeName(Shape shape) { return shape == Shape::kChain4 ? "chain4" : "fan4"; }

PipelineSpec MakeSpec(Shape shape) {
  const std::vector<std::string> functions = {"JS", "DH", "IR", "CR"};
  return shape == Shape::kChain4 ? MakeChainPipeline(4, kPayloadPages, functions)
                                 : MakeFanOutFanInPipeline(4, kPayloadPages, functions);
}

struct RunResult {
  bool ok = false;
  uint64_t accepted = 0;
  uint64_t stages_completed = 0;
  uint64_t jobs_completed = 0;
  uint64_t handoff_bytes = 0;
  uint64_t pool_write_bytes = 0;
  uint64_t refetch_bytes = 0;
  uint64_t transfers = 0;
  uint64_t migrations = 0;
  uint64_t invalidations = 0;
  uint64_t recoveries = 0;
  double job_p50_ms = 0;
  double job_p99_ms = 0;
};

RunResult Collect(const Cluster& cluster, const PipelineDriver& driver, uint32_t jobs) {
  const PipelineRunStats& s = driver.stats();
  RunResult r;
  r.ok = s.jobs_completed == jobs;
  r.accepted = cluster.accepted_invocations();
  r.stages_completed = s.stages_completed;
  r.jobs_completed = s.jobs_completed;
  r.handoff_bytes = s.handoff_bytes;
  r.pool_write_bytes = s.pool_write_bytes;
  r.refetch_bytes = s.refetch_bytes;
  r.transfers = s.transfers;
  r.migrations = s.migrations;
  r.invalidations = s.invalidations;
  r.recoveries = s.ownership_recoveries;
  if (!s.job_latency_ms.empty()) {
    r.job_p50_ms = s.job_latency_ms.Median();
    r.job_p99_ms = s.job_latency_ms.P99();
  }
  return r;
}

// All three data planes of one (nodes, shape) cell run this exact schedule:
// the seed ignores the mode, so the comparison isolates the data plane.
std::vector<SimTime> CellArrivals(uint32_t nodes, Shape shape, uint32_t jobs) {
  Rng rng(kSeed ^ (uint64_t{nodes} * 1315423911ULL) ^
          (shape == Shape::kChain4 ? 0x11ULL : 0x22ULL));
  return MakePipelineArrivals(jobs, kJobRatePerSec, rng);
}

RunResult RunPipeline(uint32_t nodes, Shape shape, DataPlaneMode mode) {
  ClusterConfig config;
  config.nodes = nodes;
  config.shstate.enabled = mode == DataPlaneMode::kTrEnvShared;
  Cluster cluster(config);
  if (!cluster.DeployTable4Functions().ok()) {
    return {};
  }
  PipelineDriverConfig driver_config;
  driver_config.mode = mode;
  PipelineDriver driver(&cluster, driver_config);
  if (!driver.Run(MakeSpec(shape), CellArrivals(nodes, shape, kJobsPerRun)).ok()) {
    return {};
  }
  return Collect(cluster, driver, kJobsPerRun);
}

// Crash drill: node 1 dies at t=1s (restarting 5 s later) on a 4-node rack
// running the trenv-shared chain. Jobs placed round-robin keep node 1 owning
// live regions at the crash; its in-flight stages re-dispatch to survivors
// and re-acquire the vacant ownership from the durable pool copy.
RunResult RunCrashDrill() {
  ClusterConfig config;
  config.nodes = 4;
  config.shstate.enabled = true;
  config.faults.seed = kSeed;
  config.faults.Add(NodeCrashWindow(SimTime::Zero() + SimDuration::Millis(1000),
                                    SimTime::Zero() + SimDuration::Millis(1200),
                                    /*probability=*/1.0, /*node=*/1,
                                    /*restart_after=*/SimDuration::Seconds(5)));
  Cluster cluster(config);
  if (!cluster.DeployTable4Functions().ok()) {
    return {};
  }
  PipelineDriverConfig driver_config;
  driver_config.mode = DataPlaneMode::kTrEnvShared;
  PipelineDriver driver(&cluster, driver_config);
  if (!driver.Run(MakeSpec(Shape::kChain4), CellArrivals(4, Shape::kChain4, kJobsPerRun))
           .ok()) {
    return {};
  }
  return Collect(cluster, driver, kJobsPerRun);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

std::string UtcNow() {
  char buf[32];
  const std::time_t t = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&t, &tm_utc);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

double ToMiB(uint64_t bytes) { return static_cast<double>(bytes) / static_cast<double>(kMiB); }

struct SweepPoint {
  uint32_t nodes;
  Shape shape;
  DataPlaneMode mode;
};

int RunBench(bench::BenchEnv& env) {
  // Accepted for CI flag parity with the other cluster benches; the driver
  // path has no sharded core, so the value never influences the report.
  (void)env.ExtraValue("--shards=", "1");
  std::cout << "=== Stateful pipelines: nodes x shape x data plane ===\n";

  std::vector<SweepPoint> points;
  for (const uint32_t nodes : {2u, 4u, 8u}) {
    for (const Shape shape : {Shape::kChain4, Shape::kFan4}) {
      for (const DataPlaneMode mode :
           {DataPlaneMode::kTrEnvShared, DataPlaneMode::kCopyThroughWorker,
            DataPlaneMode::kNasRoundtrip}) {
        points.push_back({nodes, shape, mode});
      }
    }
  }
  const std::vector<RunResult> sweep = bench::ParallelSweep(
      points.size(), env.jobs,
      [&](size_t i) { return RunPipeline(points[i].nodes, points[i].shape, points[i].mode); });

  Table table({"Nodes", "Shape", "Plane", "Handoff MiB", "Pool-write MiB", "Refetch MiB",
               "Transfers", "Migr", "Inval", "Job p50 ms", "Job p99 ms"});
  bool all_complete = true;
  for (size_t i = 0; i < points.size(); ++i) {
    const RunResult& r = sweep[i];
    if (!r.ok) {
      std::cerr << "sweep run " << i << " failed\n";
      return 1;
    }
    all_complete = all_complete && r.accepted == r.stages_completed &&
                   r.jobs_completed == kJobsPerRun;
    table.AddRow({std::to_string(points[i].nodes), ShapeName(points[i].shape),
                  DataPlaneModeName(points[i].mode), Table::Num(ToMiB(r.handoff_bytes), 1),
                  Table::Num(ToMiB(r.pool_write_bytes), 1),
                  Table::Num(ToMiB(r.refetch_bytes), 1), std::to_string(r.transfers),
                  std::to_string(r.migrations), std::to_string(r.invalidations),
                  Table::Num(r.job_p50_ms, 2), Table::Num(r.job_p99_ms, 2)});
  }
  table.Print(std::cout);
  std::cout << "Handoff MiB counts fabric crossings only: trenv-shared keeps payloads in "
               "the pool (CXL stores/loads are the pool-write/refetch columns).\n\n";
  if (!all_complete) {
    std::cerr << "FAIL: a sweep run lost stage invocations or left jobs unfinished\n";
    return 1;
  }

  // Headline gate: at >= 4 nodes the 4-stage chain must move >= 5x fewer
  // handoff bytes under trenv-shared than under copy-through-worker.
  bool verdict_ok = true;
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i].mode != DataPlaneMode::kTrEnvShared || points[i].shape != Shape::kChain4 ||
        points[i].nodes < 4) {
      continue;
    }
    const RunResult& shared = sweep[i];
    const RunResult& copy = sweep[i + 1];  // same cell, copy-worker plane
    const bool five_x =
        copy.handoff_bytes > 0 && copy.handoff_bytes >= 5 * shared.handoff_bytes;
    std::cout << "n=" << points[i].nodes << " chain4: trenv-shared moved "
              << Table::Num(ToMiB(shared.handoff_bytes), 1) << " MiB vs copy-worker "
              << Table::Num(ToMiB(copy.handoff_bytes), 1) << " MiB ("
              << (five_x ? ">= 5x fewer" : "LESS THAN 5x") << ")\n";
    verdict_ok = verdict_ok && five_x;
  }
  if (!verdict_ok) {
    std::cerr << "FAIL: trenv-shared did not move >= 5x fewer handoff bytes on the "
                 "4-stage chain at >= 4 nodes\n";
    return 1;
  }

  std::cout << "\n=== Region-owner crash at t=1s (restart +5s), trenv-shared chain4, "
               "4 nodes ===\n";
  const std::vector<RunResult> drill =
      bench::ParallelSweep(1, env.jobs, [&](size_t) { return RunCrashDrill(); });
  const RunResult& crash = drill[0];
  if (!crash.ok) {
    std::cerr << "crash drill run failed\n";
    return 1;
  }
  Table crash_table({"Accepted", "Stages done", "Jobs done", "Recoveries", "Inval",
                     "Handoff MiB", "Job p99 ms"});
  crash_table.AddRow({std::to_string(crash.accepted), std::to_string(crash.stages_completed),
                      std::to_string(crash.jobs_completed), std::to_string(crash.recoveries),
                      std::to_string(crash.invalidations),
                      Table::Num(ToMiB(crash.handoff_bytes), 1),
                      Table::Num(crash.job_p99_ms, 2)});
  crash_table.Print(std::cout);
  if (crash.accepted != crash.stages_completed || crash.jobs_completed != kJobsPerRun) {
    std::cerr << "FAIL: crash drill lost invocations: accepted " << crash.accepted
              << " completed " << crash.stages_completed << " jobs " << crash.jobs_completed
              << "/" << kJobsPerRun << "\n";
    return 1;
  }
  if (crash.recoveries == 0) {
    std::cerr << "FAIL: crash drill exercised no ownership recovery\n";
    return 1;
  }
  std::cout << "Crash drill: every accepted invocation completed (" << crash.recoveries
            << " vacant-ownership recoveries from the durable pool copy).\n";

  const std::string json_path = env.ExtraValue("--bench-json=");
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::app);
    if (!out) {
      std::cerr << "failed to append record to " << json_path << "\n";
      return 1;
    }
    out << "{\"utc\":\"" << UtcNow() << "\",\"label\":\""
        << JsonEscape(env.ExtraValue("--bench-label=")) << "\",\"host\":"
        << bench::HostJson(env.jobs) << ",\"benchmarks\":{";
    bool first = true;
    for (size_t i = 0; i < points.size(); ++i) {
      if (points[i].nodes != 4) {
        continue;  // the trajectory tracks the headline 4-node rows
      }
      const RunResult& r = sweep[i];
      if (!first) {
        out << ",";
      }
      first = false;
      out << "\"fig27_stateful_pipeline/" << ShapeName(points[i].shape) << "_"
          << DataPlaneModeName(points[i].mode)
          << "\":{\"real_ns\":" << static_cast<uint64_t>(r.job_p99_ms * 1e6)
          << ",\"handoff_bytes\":" << r.handoff_bytes
          << ",\"pool_write_bytes\":" << r.pool_write_bytes
          << ",\"migrations\":" << r.migrations << "}";
    }
    out << ",\"fig27_stateful_pipeline/crash_drill\":{\"accepted\":" << crash.accepted
        << ",\"completed\":" << crash.stages_completed
        << ",\"recoveries\":" << crash.recoveries << "}";
    out << "}}\n";
    if (!out) {
      std::cerr << "failed to append record to " << json_path << "\n";
      return 1;
    }
    std::cout << "appended record to " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  trenv::bench::BenchEnv env(argc, argv,
                             {{"--bench-json=", "--bench-json=<file>"},
                              {"--bench-label=", "--bench-label=<text>"},
                              {"--shards=", "--shards=<n>"}});
  const int rc = trenv::RunBench(env);
  env.Finish();
  return rc;
}
