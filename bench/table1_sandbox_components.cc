// Table 1: the core components in current containers — creation overheads
// versus TrEnv's solution, at 1-way and 15-way concurrency.
#include <iostream>

#include "src/common/cost_model.h"
#include "src/common/table.h"
#include "src/sandbox/cgroup.h"
#include "src/sandbox/mount_namespace.h"
#include "src/sandbox/net_namespace.h"
#include "src/sandbox/sandbox.h"

namespace trenv {
namespace {

void Run() {
  PrintBanner(std::cout, "Table 1: container component costs vs TrEnv's solution");

  CgroupManager cgroups;
  Table table({"Unit", "Create (1-way)", "Create (15-way)", "TrEnv solution", "TrEnv cost"});

  table.AddRow({"Sandbox/Network", Table::Ms(NetNsFactory::CreateCost(0).millis()),
                Table::Ms(NetNsFactory::CreateCost(15).millis()), "direct reuse (reset)",
                Table::Ms(cost::kNetNsReset.millis(), 3)});

  // TrEnv rootfs reconfiguration: 2 mounts + 1 umount of the old overlay.
  const SimDuration reconfig =
      cost::kMountSyscall * 2.0 + cost::kUmountSyscall + cost::kCgroupReconfigure;
  table.AddRow({"Sandbox/Rootfs", Table::Ms(MountNamespace::ColdSetupCost(0).millis()),
                Table::Ms(MountNamespace::ColdSetupCost(15).millis()),
                "reuse + reconfiguration (2 mounts)", Table::Ms(reconfig.millis(), 3)});

  const SimDuration cgroup_cold_1 = cgroups.CreateCost() + cgroups.MigrateCost(0);
  const SimDuration cgroup_cold_15 = cgroups.CreateCost() + cgroups.MigrateCost(15);
  table.AddRow({"Sandbox/Cgroup", Table::Ms(cgroup_cold_1.millis()),
                Table::Ms(cgroup_cold_15.millis()), "reuse + CLONE_INTO_CGROUP",
                Table::Ms(cgroups.CloneIntoCost().millis(), 3)});

  table.AddRow({"Sandbox/Other", Table::Ms(cost::kMiscNamespaces.millis(), 2),
                Table::Ms(cost::kMiscNamespaces.millis(), 2), "create (already cheap)",
                Table::Ms(cost::kMiscNamespaces.millis(), 2)});

  // Process memory: a 360 MiB image restored by copy vs one mmt_attach.
  const double image_mb = 360;
  const SimDuration copy = SimDuration::FromSecondsF(
      image_mb * static_cast<double>(kMiB) / cost::kCriuMemCopyBytesPerSec);
  const double metadata_bytes = image_mb * 256 * cost::kMmtMetadataBytesPerPage;
  const SimDuration attach =
      cost::kMmtIoctl + SimDuration::FromSecondsF(metadata_bytes / cost::kMmtAttachCopyBytesPerSec);
  table.AddRow({"Process/Memory (360 MiB)", Table::Ms(copy.millis()), Table::Ms(copy.millis()),
                "mm-template attach (metadata only)", Table::Ms(attach.millis(), 3)});

  const SimDuration misc =
      cost::kCriuMiscRestoreBase + cost::kCriuPerThreadClone * 14.0 + cost::kCriuPerOpenFd * 24.0;
  table.AddRow({"Process/Other (14 thr)", Table::Ms(misc.millis()), Table::Ms(misc.millis()),
                "handled by CRIU (repurpose-and-join)",
                Table::Ms((cost::kCriuRepurposeRequest + misc).millis())});

  table.Print(std::cout);
  std::cout << "Paper reference: netns 80ms~10s, rootfs 10~800ms, cgroup 30~400ms, "
               "other <1ms, memory >300ms, process-other 3~15ms.\n";
}

}  // namespace
}  // namespace trenv

int main() {
  trenv::Run();
  return 0;
}
