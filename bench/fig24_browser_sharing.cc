// Figure 24: CDF of browser-agent E2E latency with 200 instances on 20
// physical cores — TrEnv vs TrEnv-S (browser sharing).
#include <array>
#include <iostream>

#include "src/common/table.h"
#include "src/vm/vm_platform.h"

namespace trenv {
namespace {

Histogram RunAgents(const VmSystemConfig& config, const std::string& agent, int count) {
  AgentVmPlatform platform(config);  // 20 cores by default
  for (const auto& profile : Table2Agents()) {
    (void)platform.DeployAgent(profile);
  }
  for (int i = 0; i < count; ++i) {
    // Staggered arrivals over ~6 s, as a burst of user requests would land.
    (void)platform.SubmitLaunch(SimTime::Zero() + SimDuration::Millis(i * 30), agent);
  }
  platform.RunToCompletion();
  return platform.metrics().at(agent).e2e_s;
}

void Run() {
  PrintBanner(std::cout,
              "Figure 24: browser sharing under overcommit (200 instances, 20 cores)");
  const std::array<const char*, 3> agents = {"Shop assistant", "Blog summary", "Game design"};
  Table table({"Agent", "TrEnv avg (s)", "TrEnv-S avg (s)", "avg reduction", "TrEnv p99 (s)",
               "TrEnv-S p99 (s)", "p99 reduction"});
  for (const char* agent : agents) {
    Histogram plain = RunAgents(TrEnvVmConfig(), agent, 200);
    Histogram shared = RunAgents(TrEnvSConfig(), agent, 200);
    table.AddRow({agent, Table::Num(plain.Mean(), 1), Table::Num(shared.Mean(), 1),
                  Table::Pct(1.0 - shared.Mean() / plain.Mean()), Table::Num(plain.P99(), 1),
                  Table::Num(shared.P99(), 1), Table::Pct(1.0 - shared.P99() / plain.P99())});

    std::cout << "# CDF " << agent << " (seconds -> fraction), TrEnv then TrEnv-S\n";
    for (const auto& [x, y] : plain.Cdf(8)) {
      std::cout << Table::Num(x, 1) << " " << Table::Num(y, 3) << "  ";
    }
    std::cout << "\n";
    for (const auto& [x, y] : shared.Cdf(8)) {
      std::cout << Table::Num(x, 1) << " " << Table::Num(y, 3) << "  ";
    }
    std::cout << "\n";
  }
  table.Print(std::cout);
  std::cout << "Paper reference: browser sharing cuts P99 by 2%-58% and average by 1%-26%; "
               "Blog summary gains the most, Game design (6% CPU util) the least.\n";
}

}  // namespace
}  // namespace trenv

int main() {
  trenv::Run();
  return 0;
}
