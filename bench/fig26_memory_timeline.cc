// Figure 26: memory usage over time during execution of the Map-reduce and
// Blog-summary agents (10 concurrent instances), comparing E2B and TrEnv.
// Also reports the usage-x-duration integral (the memory-cost model).
#include <iostream>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/vm/vm_platform.h"

namespace trenv {
namespace {

struct TimelineResult {
  std::vector<std::pair<double, double>> series;  // (seconds, GiB)
  double integral_gib_s = 0;
  double peak_gib = 0;
};

TimelineResult RunTimeline(const VmSystemConfig& config, const std::string& agent) {
  AgentVmPlatform platform(config);
  for (const auto& profile : Table2Agents()) {
    (void)platform.DeployAgent(profile);
  }
  for (int i = 0; i < 10; ++i) {
    (void)platform.SubmitLaunch(SimTime::Zero() + SimDuration::Millis(i * 100), agent);
  }
  platform.RunToCompletion();
  TimelineResult result;
  result.peak_gib = platform.memory_gauge().peak() / static_cast<double>(kGiB);
  result.integral_gib_s = platform.memory_gauge().TimeIntegral(platform.scheduler().now()) /
                          static_cast<double>(kGiB);
  // Downsample the raw series to ~16 points.
  const auto& raw = platform.memory_gauge().Series();
  const size_t stride = std::max<size_t>(1, raw.size() / 16);
  for (size_t i = 0; i < raw.size(); i += stride) {
    result.series.emplace_back(raw[i].first, raw[i].second / static_cast<double>(kGiB));
  }
  return result;
}

void Run() {
  PrintBanner(std::cout, "Figure 26: memory usage during execution (10 instances)");
  for (const std::string agent : {"Map reduce", "Blog summary"}) {
    TimelineResult e2b = RunTimeline(E2bConfig(), agent);
    TimelineResult trenv = RunTimeline(TrEnvSConfig(), agent);
    std::cout << "\n--- " << agent << " ---\n";
    std::cout << "# t_seconds E2B_GiB (sampled)\n";
    for (const auto& [t, gib] : e2b.series) {
      std::cout << Table::Num(t, 1) << ":" << Table::Num(gib, 2) << " ";
    }
    std::cout << "\n# t_seconds TrEnv_GiB (sampled)\n";
    for (const auto& [t, gib] : trenv.series) {
      std::cout << Table::Num(t, 1) << ":" << Table::Num(gib, 2) << " ";
    }
    std::cout << "\nPeak: E2B " << Table::Num(e2b.peak_gib, 2) << " GiB vs TrEnv "
              << Table::Num(trenv.peak_gib, 2) << " GiB\n";
    std::cout << "Memory cost (GiB x s): E2B " << Table::Num(e2b.integral_gib_s, 1)
              << " vs TrEnv " << Table::Num(trenv.integral_gib_s, 1) << " (saving "
              << Table::Pct(1.0 - trenv.integral_gib_s / e2b.integral_gib_s) << ")\n";
  }
  std::cout << "\nPaper reference: modelling memory cost as usage x duration, TrEnv saves "
               "over 50% of overall memory cost.\n";
}

}  // namespace
}  // namespace trenv

int main() {
  trenv::Run();
  return 0;
}
