// Figure 21: the optimization-step ablation — CRIU baseline, then sandbox
// repurposing ("Reconfig"), then CLONE_INTO_CGROUP ("Cgroup"), then the full
// system with mm-template (T-CXL) — for IR and JS.
#include <iostream>

#include "bench/bench_util.h"

namespace trenv {
namespace {

struct Step {
  SystemKind kind;
  std::string label;
};

void Run() {
  PrintBanner(std::cout, "Figure 21: optimization steps and their effect (IR and JS)");
  const Step steps[] = {{SystemKind::kCriu, "CRIU (baseline)"},
                        {SystemKind::kTrEnvReconfig, "+ Reconfig (repurpose sandbox)"},
                        {SystemKind::kTrEnvCgroup, "+ Cgroup (CLONE_INTO_CGROUP)"},
                        {SystemKind::kTrEnvCxl, "+ mm-template (T-CXL)"}};

  Table table({"Step", "Func", "Startup (ms)", "E2E (ms)", "Startup saved vs prev"});
  std::map<std::string, double> prev_startup;
  for (const Step& step : steps) {
    Testbed bed(step.kind);
    if (!bed.DeployTable4Functions().ok()) {
      continue;
    }
    for (const std::string fn : {"IR", "JS"}) {
      // Warm the sandbox pool (steady state), then measure a fresh start
      // past the keep-alive TTL.
      Schedule schedule{{SimTime::Zero(), fn},
                        {SimTime::Zero() + SimDuration::Minutes(11), fn}};
      Testbed fresh(step.kind);
      if (!fresh.DeployTable4Functions().ok()) {
        continue;
      }
      (void)fresh.platform().Run(schedule);
      const auto& m = fresh.platform().metrics().per_function().at(fn);
      const double startup = m.startup_ms.Min();
      const double e2e = m.e2e_ms.Min();
      std::string saved = "-";
      if (prev_startup.contains(fn)) {
        saved = Table::Ms(prev_startup[fn] - startup);
      }
      prev_startup[fn] = startup;
      table.AddRow({step.label, fn, Table::Num(startup), Table::Num(e2e), saved});
    }
  }
  table.Print(std::cout);
  std::cout << "Paper reference: Reconfig saves ~200 ms of sandbox setup; Cgroup a further "
               "49 ms (IR) / 13 ms (JS); mm-template a further 290 ms (IR) / 67 ms (JS), "
               "landing at 18 ms (IR) and 8 ms (JS) startup.\n";
}

}  // namespace
}  // namespace trenv

int main() {
  trenv::Run();
  return 0;
}
