// Figure 21: the optimization-step ablation — CRIU baseline, then sandbox
// repurposing ("Reconfig"), then CLONE_INTO_CGROUP ("Cgroup"), then the full
// system with mm-template (T-CXL) — for IR and JS. A second table extends the
// ablation to far-memory images: T-RDMA demand-faults its pages on first
// touch, and "+ prefetch" restores the same template with the recorded
// working set bulk-fetched during the sandbox/process phases.
#include <iostream>

#include "bench/bench_util.h"

namespace trenv {
namespace {

struct Step {
  SystemKind kind;
  std::string label;
};

const Step kSteps[] = {{SystemKind::kCriu, "CRIU (baseline)"},
                       {SystemKind::kTrEnvReconfig, "+ Reconfig (repurpose sandbox)"},
                       {SystemKind::kTrEnvCgroup, "+ Cgroup (CLONE_INTO_CGROUP)"},
                       {SystemKind::kTrEnvCxl, "+ mm-template (T-CXL)"}};
const char* const kFuncs[] = {"IR", "JS"};

struct StepResult {
  // Per function, in kFuncs order: {startup_ms, e2e_ms}; empty on failure.
  std::vector<std::pair<double, double>> metrics;
};

StepResult RunStep(const Step& step) {
  StepResult result;
  Testbed bed(step.kind);
  if (!bed.DeployTable4Functions().ok()) {
    return result;
  }
  for (const char* fn : kFuncs) {
    // Warm the sandbox pool (steady state), then measure a fresh start
    // past the keep-alive TTL.
    Schedule schedule{{SimTime::Zero(), fn},
                      {SimTime::Zero() + SimDuration::Minutes(11), fn}};
    Testbed fresh(step.kind);
    if (!fresh.DeployTable4Functions().ok()) {
      continue;
    }
    (void)fresh.platform().Run(schedule);
    const auto& m = fresh.platform().metrics().per_function().at(fn);
    result.metrics.emplace_back(m.startup_ms.Min(), m.e2e_ms.Min());
  }
  return result;
}

// Attach + first-touch for an RDMA-homed template: direct Restore followed by
// OnExecute against a warmed engine (recorded working set, pooled sandbox).
struct ProbeResult {
  double startup_ms = 0.0;
  double exec_overhead_ms = 0.0;
  double total_ms = 0.0;
  bool ok = false;
};

ProbeResult RunRdmaProbe(const std::string& fn, bool prefetch) {
  ProbeResult result;
  PlatformConfig config;
  config.trenv_prefetch = prefetch;
  Testbed bed(SystemKind::kTrEnvRdma, config);
  if (!bed.DeployTable4Functions().ok()) {
    return result;
  }
  (void)bed.platform().Run(Schedule{{SimTime::Zero(), fn}});
  bed.platform().EvictAllIdle();

  RestoreContext ctx;
  FrameAllocator frames(8ULL * kGiB);
  PidAllocator pids;
  ctx.frames = &frames;
  ctx.backends = &bed.backends();
  ctx.pids = &pids;
  const FunctionProfile* profile = FindTable4Function(fn);
  auto outcome = bed.engine().Restore(*profile, ctx);
  if (!outcome.ok()) {
    return result;
  }
  auto overheads = bed.engine().OnExecute(*profile, *outcome->instance, ctx);
  if (!overheads.ok()) {
    return result;
  }
  result.startup_ms = outcome->startup.Total().millis();
  result.exec_overhead_ms = overheads->added_latency.millis();
  result.total_ms = result.startup_ms + result.exec_overhead_ms;
  result.ok = true;
  return result;
}

void Run(bench::BenchEnv& env) {
  PrintBanner(std::cout, "Figure 21: optimization steps and their effect (IR and JS)");
  Table table({"Step", "Func", "Startup (ms)", "E2E (ms)", "Startup saved vs prev"});
  std::vector<StepResult> steps = bench::ParallelSweep(
      std::size(kSteps), env.jobs, [&](size_t i) { return RunStep(kSteps[i]); });
  std::map<std::string, double> prev_startup;
  for (size_t s = 0; s < steps.size(); ++s) {
    for (size_t f = 0; f < steps[s].metrics.size(); ++f) {
      const std::string fn = kFuncs[f];
      const auto [startup, e2e] = steps[s].metrics[f];
      std::string saved = "-";
      if (prev_startup.contains(fn)) {
        saved = Table::Ms(prev_startup[fn] - startup);
      }
      prev_startup[fn] = startup;
      table.AddRow({kSteps[s].label, fn, Table::Num(startup), Table::Num(e2e), saved});
    }
  }
  table.Print(std::cout);
  std::cout << "Paper reference: Reconfig saves ~200 ms of sandbox setup; Cgroup a further "
               "49 ms (IR) / 13 ms (JS); mm-template a further 290 ms (IR) / 67 ms (JS), "
               "landing at 18 ms (IR) and 8 ms (JS) startup.\n";

  std::cout << "\nFar-memory extension: attach + first touch with the image on RDMA\n";
  Table rdma_table(
      {"Step", "Func", "Startup (ms)", "First-touch overhead (ms)", "Attach+first-touch (ms)"});
  // One probe per (func, config), all independent.
  struct Probe {
    const char* fn;
    bool prefetch;
  };
  const Probe probes[] = {
      {"IR", false}, {"JS", false}, {"IR", true}, {"JS", true}};
  std::vector<ProbeResult> probe_results = bench::ParallelSweep(
      std::size(probes), env.jobs,
      [&](size_t i) { return RunRdmaProbe(probes[i].fn, probes[i].prefetch); });
  for (size_t i = 0; i < std::size(probes); ++i) {
    if (!probe_results[i].ok) {
      continue;
    }
    rdma_table.AddRow({probes[i].prefetch ? "+ prefetch (recorded working set)"
                                          : "+ T-RDMA (image on far memory)",
                       probes[i].fn, Table::Num(probe_results[i].startup_ms),
                       Table::Num(probe_results[i].exec_overhead_ms),
                       Table::Num(probe_results[i].total_ms)});
  }
  rdma_table.Print(std::cout);
  // Self-enforced acceptance gate: batched prefetch must at least halve the
  // attach -> first-touch latency of the demand-fault path.
  bool gate_pass = true;
  for (size_t f = 0; f < std::size(kFuncs); ++f) {
    const ProbeResult& off = probe_results[f];
    const ProbeResult& on = probe_results[f + std::size(kFuncs)];
    if (!off.ok || !on.ok || on.total_ms <= 0.0) {
      gate_pass = false;
      continue;
    }
    const double speedup = off.total_ms / on.total_ms;
    gate_pass = gate_pass && speedup >= 2.0;
    std::cout << kFuncs[f] << " prefetch speedup: " << Table::Num(speedup, 2) << "x\n";
  }
  std::cout << "Prefetch gate (>= 2x attach+first-touch): " << (gate_pass ? "PASS" : "FAIL")
            << "\n";
  if (!gate_pass) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) {
  trenv::bench::BenchEnv env(argc, argv);
  trenv::Run(env);
  env.Finish();
  return 0;
}
