#!/usr/bin/env python3
"""Perf-smoke guard: compare a fresh micro-benchmark record against the
committed trajectory (BENCH_micro.json) and fail on large regressions.

Both files are JSON lines; each record looks like

    {"utc": "...", "label": "...", "benchmarks": {"BM_Foo": {"real_ns": ...}}}

For every benchmark name present in the candidate record, the baseline is the
*latest* committed entry that reports a numeric real_ns for the same name
(records with nested, non-timing payloads — e.g. the chaos reports — are
skipped). The check fails if candidate_real_ns > max_ratio * baseline_real_ns
for any benchmark. Benchmarks with no committed baseline pass with a note:
they gain a baseline when their record lands in BENCH_micro.json.

Usage:
    check_bench_regression.py --trajectory BENCH_micro.json \
        --candidate BENCH_micro_ci.json [--max-ratio 2.0]
"""

import argparse
import json
import sys


def load_records(path, missing_ok=False):
    """Parses a JSON-lines file. With missing_ok, a nonexistent file is an
    empty trajectory (first run on a fresh branch), not a crash."""
    records = []
    try:
        f = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        if missing_ok:
            print(f"notice: {path} does not exist yet; every metric is new")
            return records
        raise SystemExit(f"{path}: no such file")
    with f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{line_no}: invalid JSON: {e}")
    return records


def timing_entries(record):
    """Yields (name, real_ns) for benchmarks that report a numeric real_ns."""
    for name, data in record.get("benchmarks", {}).items():
        if isinstance(data, dict) and isinstance(data.get("real_ns"), (int, float)):
            yield name, float(data["real_ns"])


def latest_baselines(records):
    baselines = {}
    for record in records:  # later lines overwrite earlier: latest entry wins
        for name, real_ns in timing_entries(record):
            baselines[name] = (real_ns, record.get("label", "?"))
    return baselines


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trajectory", required=True,
                        help="committed JSON-lines trajectory (BENCH_micro.json)")
    parser.add_argument("--candidate", required=True,
                        help="fresh JSON-lines record from this run")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail if candidate/baseline exceeds this (default 2.0)")
    args = parser.parse_args()

    trajectory = load_records(args.trajectory, missing_ok=True)
    if not trajectory:
        print(f"notice: {args.trajectory} has no records; "
              "candidates pass and seed the baseline when committed")
    baselines = latest_baselines(trajectory)
    candidates = load_records(args.candidate)
    if not candidates:
        raise SystemExit(f"{args.candidate}: no records")

    failures = []
    rows = []
    for record in candidates:
        for name, real_ns in timing_entries(record):
            if name not in baselines:
                rows.append((name, real_ns, None, None, "no baseline (new)"))
                continue
            base_ns, base_label = baselines[name]
            ratio = real_ns / base_ns if base_ns > 0 else float("inf")
            verdict = "ok" if ratio <= args.max_ratio else "REGRESSED"
            rows.append((name, real_ns, base_ns, ratio, f"{verdict} vs '{base_label}'"))
            if ratio > args.max_ratio:
                failures.append((name, ratio))

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'benchmark'.ljust(width)}  {'candidate':>12}  {'baseline':>12}  {'ratio':>6}")
    for name, cand, base, ratio, note in rows:
        base_s = f"{base:12.0f}" if base is not None else " " * 12
        ratio_s = f"{ratio:6.2f}" if ratio is not None else " " * 6
        print(f"{name.ljust(width)}  {cand:12.0f}  {base_s}  {ratio_s}  {note}")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.max_ratio}x:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.max_ratio}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
