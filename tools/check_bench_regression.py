#!/usr/bin/env python3
"""Perf-smoke guard: compare a fresh micro-benchmark record against the
committed trajectory (BENCH_micro.json) and fail on large regressions.

Both files are JSON lines; each record looks like

    {"utc": "...", "label": "...", "benchmarks": {"BM_Foo": {"real_ns": ...}}}

A benchmark entry is either a timing ({"real_ns": N}, lower is better) or a
gauge ({"value": N, "direction": "higher_is_better"}) — e.g. peak warm-env
density, where SHRINKING is the regression. Entries with a "value" default to
lower-is-better unless they say otherwise.

Records may carry a "host" object ({"jobs": N, "cores": N, "compiler": "..."}).
When both the candidate and its baseline record one, and they describe
different machines (core count or compiler differ), the comparison is skipped
with a notice instead of failing: a wall-clock ratio across machines is noise,
not a regression. "jobs" is informational only — the same machine at a
different sweep width is still comparable.

For every benchmark name present in the candidate record, the baseline is the
*latest* committed entry that reports the same metric for the same name
(records with nested, non-metric payloads — e.g. the chaos reports — are
skipped). The check fails when the candidate is worse than max_ratio times
the baseline in the metric's bad direction: candidate/baseline for timings,
baseline/candidate for higher-is-better gauges. Benchmarks with no committed
baseline pass with a note: they gain a baseline when their record lands in
BENCH_micro.json.

Usage:
    check_bench_regression.py --trajectory BENCH_micro.json \
        --candidate BENCH_micro_ci.json [--max-ratio 2.0]
"""

import argparse
import json
import sys


def load_records(path, missing_ok=False):
    """Parses a JSON-lines file. With missing_ok, a nonexistent file is an
    empty trajectory (first run on a fresh branch), not a crash. Malformed or
    truncated lines (a killed bench run, a botched merge) are skipped with a
    warning — one bad line must not invalidate the rest of the trajectory —
    but a file whose non-blank lines yield NO usable records is an error."""
    records = []
    try:
        f = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        if missing_ok:
            print(f"notice: {path} does not exist yet; every metric is new")
            return records
        raise SystemExit(f"{path}: no such file")
    nonblank = 0
    with f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            nonblank += 1
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                print(f"warning: {path}:{line_no}: skipping invalid JSON: {e}",
                      file=sys.stderr)
    if nonblank > 0 and not records:
        raise SystemExit(
            f"{path}: {nonblank} line(s), none parseable — refusing to treat "
            "a corrupt file as an empty trajectory")
    return records


def metric_entries(record):
    """Yields (name, value, higher_is_better) for each benchmark that reports
    a numeric real_ns (timing, lower is better) or value (gauge, direction
    from its "direction" field)."""
    for name, data in record.get("benchmarks", {}).items():
        if not isinstance(data, dict):
            continue
        if isinstance(data.get("real_ns"), (int, float)):
            yield name, float(data["real_ns"]), False
        elif isinstance(data.get("value"), (int, float)):
            yield name, float(data["value"]), data.get("direction") == "higher_is_better"


def host_key(record):
    """The parts of a record's host metadata that decide comparability.
    None when the record predates host stamping (always comparable)."""
    host = record.get("host")
    if not isinstance(host, dict):
        return None
    return (host.get("cores"), host.get("compiler"))


def latest_baselines(records):
    baselines = {}
    for record in records:  # later lines overwrite earlier: latest entry wins
        for name, value, higher in metric_entries(record):
            baselines[name] = (value, record.get("label", "?"), higher,
                               host_key(record))
    return baselines


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trajectory", required=True,
                        help="committed JSON-lines trajectory (BENCH_micro.json)")
    parser.add_argument("--candidate", required=True,
                        help="fresh JSON-lines record from this run")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail if candidate/baseline exceeds this (default 2.0)")
    args = parser.parse_args()

    trajectory = load_records(args.trajectory, missing_ok=True)
    if not trajectory:
        print(f"notice: {args.trajectory} has no records; "
              "candidates pass and seed the baseline when committed")
    baselines = latest_baselines(trajectory)
    candidates = load_records(args.candidate)
    if not candidates:
        raise SystemExit(f"{args.candidate}: no records")

    failures = []
    rows = []
    skipped_hosts = 0
    for record in candidates:
        cand_host = host_key(record)
        for name, value, higher in metric_entries(record):
            if name not in baselines:
                rows.append((name, value, None, None, "no baseline (new)"))
                continue
            base, base_label, _, base_host = baselines[name]
            if (cand_host is not None and base_host is not None
                    and cand_host != base_host):
                rows.append((name, value, base, None,
                             f"skipped: different host than '{base_label}' "
                             f"({base_host} vs {cand_host})"))
                skipped_hosts += 1
                continue
            # Ratio in the metric's bad direction, so > max_ratio always
            # means "regressed" regardless of which way better points.
            if higher:
                ratio = base / value if value > 0 else float("inf")
            else:
                ratio = value / base if base > 0 else float("inf")
            verdict = "ok" if ratio <= args.max_ratio else "REGRESSED"
            arrow = "higher-is-better" if higher else "lower-is-better"
            rows.append((name, value, base, ratio,
                         f"{verdict} ({arrow}) vs \'{base_label}\'"))
            if ratio > args.max_ratio:
                failures.append((name, ratio))

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'benchmark'.ljust(width)}  {'candidate':>12}  {'baseline':>12}  {'ratio':>6}")
    for name, cand, base, ratio, note in rows:
        base_s = f"{base:12.0f}" if base is not None else " " * 12
        ratio_s = f"{ratio:6.2f}" if ratio is not None else " " * 6
        print(f"{name.ljust(width)}  {cand:12.0f}  {base_s}  {ratio_s}  {note}")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.max_ratio}x:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    if skipped_hosts:
        print(f"\nnotice: {skipped_hosts} comparison(s) skipped — baseline was "
              "recorded on a different host (cores/compiler mismatch)")
    print(f"\nOK: no benchmark regressed more than {args.max_ratio}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
