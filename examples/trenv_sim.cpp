// trenv_sim: command-line driver for the simulator — pick a system, a
// workload, and a duration; get the latency/memory report. The tool a
// downstream user reaches for before writing code against the library.
//
// Usage:
//   trenv_sim [--system=t-cxl|t-rdma|t-tiered|t-dram-hot|faasd|criu|reap+|faasnap+]
//             [--workload=w1|w2|azure|huawei|poisson] [--minutes=N]
//             [--rate=R] [--seed=S] [--mem-cap-gib=G] [--trace=file.csv]
//             [--per-function] [--export-trace=file.csv]
//             [--trace-out=file.json] [--metrics-out=file.prom]
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "src/common/table.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"
#include "src/platform/testbed.h"
#include "src/workload/trace_csv.h"
#include "src/workload/traces.h"

namespace trenv {
namespace {

struct CliOptions {
  SystemKind system = SystemKind::kTrEnvCxl;
  std::string workload = "w1";
  int64_t minutes = 30;
  double rate = 4.0;
  uint64_t seed = 42;
  std::optional<uint64_t> mem_cap_gib;
  std::string trace_path;
  std::string export_path;
  std::string trace_out;    // Chrome trace_event JSON of this run's spans
  std::string metrics_out;  // Prometheus text dump of the run's counters
  bool per_function = false;
};

const std::map<std::string, SystemKind>& SystemsByFlag() {
  static const std::map<std::string, SystemKind> kSystems = {
      {"faasd", SystemKind::kFaasd},         {"criu", SystemKind::kCriu},
      {"reap", SystemKind::kReap},           {"reap+", SystemKind::kReapPlus},
      {"faasnap", SystemKind::kFaasnap},     {"faasnap+", SystemKind::kFaasnapPlus},
      {"t-cxl", SystemKind::kTrEnvCxl},      {"t-rdma", SystemKind::kTrEnvRdma},
      {"t-tiered", SystemKind::kTrEnvTiered}, {"t-dram-hot", SystemKind::kTrEnvDramHot}};
  return kSystems;
}

void PrintUsage() {
  std::cout << "usage: trenv_sim [--system=NAME] [--workload=w1|w2|azure|huawei|poisson]\n"
               "                 [--minutes=N] [--rate=R] [--seed=S] [--mem-cap-gib=G]\n"
               "                 [--trace=FILE.csv] [--export-trace=FILE.csv]\n"
               "                 [--trace-out=FILE.json] [--metrics-out=FILE.prom]\n"
               "                 [--per-function]\n"
               "systems: ";
  for (const auto& [flag, kind] : SystemsByFlag()) {
    std::cout << flag << " ";
  }
  std::cout << "\n";
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) {
        return arg.substr(prefix.size());
      }
      return std::nullopt;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    }
    if (arg == "--per-function") {
      options->per_function = true;
    } else if (auto v = value_of("--system=")) {
      auto it = SystemsByFlag().find(*v);
      if (it == SystemsByFlag().end()) {
        std::cerr << "unknown system: " << *v << "\n";
        return false;
      }
      options->system = it->second;
    } else if (auto w = value_of("--workload=")) {
      options->workload = *w;
    } else if (auto m = value_of("--minutes=")) {
      options->minutes = std::stoll(*m);
    } else if (auto r = value_of("--rate=")) {
      options->rate = std::stod(*r);
    } else if (auto s = value_of("--seed=")) {
      options->seed = std::stoull(*s);
    } else if (auto g = value_of("--mem-cap-gib=")) {
      options->mem_cap_gib = std::stoull(*g);
    } else if (auto t = value_of("--trace=")) {
      options->trace_path = *t;
    } else if (auto e = value_of("--export-trace=")) {
      options->export_path = *e;
    } else if (auto o = value_of("--trace-out=")) {
      options->trace_out = *o;
    } else if (auto mo = value_of("--metrics-out=")) {
      options->metrics_out = *mo;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      PrintUsage();
      return false;
    }
  }
  return true;
}

Result<Schedule> BuildWorkload(const CliOptions& options,
                               const std::vector<std::string>& functions, Rng& rng) {
  if (!options.trace_path.empty()) {
    return LoadTraceCsvFile(options.trace_path, TraceCsvOptions{}, rng);
  }
  const SimDuration duration = SimDuration::Minutes(options.minutes);
  if (options.workload == "w1") {
    BurstyOptions w1;
    w1.duration = duration;
    return MakeBurstyWorkload(functions, w1, rng);
  }
  if (options.workload == "w2") {
    DiurnalOptions w2;
    w2.duration = duration;
    w2.peak_rate_per_sec = options.rate;
    return MakeDiurnalWorkload(functions, w2, rng);
  }
  if (options.workload == "azure") {
    return MakeAzureLikeWorkload(functions, rng);
  }
  if (options.workload == "huawei") {
    return MakeHuaweiLikeWorkload(functions, rng);
  }
  if (options.workload == "poisson") {
    return MakePoissonWorkload(functions, options.rate, duration, 0.8, rng);
  }
  return Status::InvalidArgument("unknown workload: " + options.workload);
}

int Main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    return 1;
  }
  PlatformConfig config;
  config.seed = options.seed;
  if (options.mem_cap_gib.has_value()) {
    config.soft_mem_cap_bytes = *options.mem_cap_gib * kGiB;
  }
  obs::Tracer tracer;
  if (!options.trace_out.empty()) {
    config.tracer = &tracer;
  }
  Testbed bed(options.system, config);
  if (Status status = bed.DeployTable4Functions(); !status.ok()) {
    std::cerr << "deploy failed: " << status << "\n";
    return 1;
  }
  std::vector<std::string> functions;
  for (const auto& fn : Table4Functions()) {
    functions.push_back(fn.name);
  }
  Rng rng(options.seed);
  auto schedule = BuildWorkload(options, functions, rng);
  if (!schedule.ok()) {
    std::cerr << schedule.status() << "\n";
    return 1;
  }
  if (!options.export_path.empty()) {
    std::ofstream out(options.export_path);
    WriteTraceCsv(*schedule, out);
    std::cout << "exported " << schedule->size() << " invocations to " << options.export_path
              << "\n";
  }
  std::cout << "system=" << SystemName(options.system) << " workload=" << options.workload
            << " invocations=" << schedule->size() << "\n";
  if (Status status = bed.platform().Run(*schedule); !status.ok()) {
    std::cerr << "run failed: " << status << "\n";
    return 1;
  }

  const FunctionMetrics agg = bed.platform().metrics().Aggregate();
  Table summary({"metric", "value"});
  summary.AddRow({"invocations", std::to_string(agg.invocations)});
  summary.AddRow({"e2e p50 (ms)", Table::Num(agg.e2e_ms.Median())});
  summary.AddRow({"e2e p99 (ms)", Table::Num(agg.e2e_ms.P99())});
  summary.AddRow({"startup mean (ms)", Table::Num(agg.startup_ms.Mean())});
  summary.AddRow({"warm / repurposed / cold",
                  std::to_string(agg.warm_starts) + " / " +
                      std::to_string(agg.repurposed_starts) + " / " +
                      std::to_string(agg.cold_starts)});
  summary.AddRow({"peak memory", FormatBytes(bed.platform().metrics().peak_memory_bytes())});
  summary.AddRow({"failed", std::to_string(bed.platform().failed_invocations())});
  summary.Print(std::cout);

  if (options.per_function) {
    Table per_fn({"func", "n", "p50 (ms)", "p99 (ms)", "startup p99 (ms)"});
    for (const auto& [name, metrics] : bed.platform().metrics().per_function()) {
      if (metrics.e2e_ms.empty()) {
        continue;
      }
      per_fn.AddRow({name, std::to_string(metrics.e2e_ms.count()),
                     Table::Num(metrics.e2e_ms.Median()), Table::Num(metrics.e2e_ms.P99()),
                     Table::Num(metrics.startup_ms.empty() ? 0 : metrics.startup_ms.P99())});
    }
    per_fn.Print(std::cout);
  }

  const obs::Registry& stats = bed.platform().metrics().registry();
  if (!options.trace_out.empty()) {
    if (Status status = obs::WriteChromeTraceFile(tracer, options.trace_out, &stats);
        status.ok()) {
      std::cout << "trace written to " << options.trace_out << " (" << tracer.spans().size()
                << " spans; open in chrome://tracing or ui.perfetto.dev)\n";
    } else {
      std::cerr << "trace export failed: " << status << "\n";
    }
  }
  if (!options.metrics_out.empty()) {
    if (Status status = obs::WritePrometheusFile(stats, options.metrics_out); !status.ok()) {
      std::cerr << "metrics export failed: " << status << "\n";
    } else {
      std::cout << "metrics written to " << options.metrics_out << "\n";
    }
  }
  return 0;
}

}  // namespace
}  // namespace trenv

int main(int argc, char** argv) { return trenv::Main(argc, argv); }
