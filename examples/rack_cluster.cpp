// Scenario: a rack of TrEnv nodes sharing one CXL multi-headed device — the
// "across nodes" half of the paper's title. Shows that deploying the same
// functions on more nodes does not grow the pool (one consolidated image per
// rack) while per-node DRAM stays thin.
//
// Build & run:  ./build/examples/rack_cluster
#include <iostream>

#include "src/common/table.h"
#include "src/platform/cluster.h"

int main() {
  using namespace trenv;

  ClusterConfig config;
  config.nodes = 8;
  config.dispatch = ClusterConfig::Dispatch::kLeastLoaded;
  Cluster rack(config);
  if (Status status = rack.DeployTable4Functions(); !status.ok()) {
    std::cerr << "deploy failed: " << status << "\n";
    return 1;
  }
  std::cout << "Deployed 10 functions on " << rack.node_count()
            << " nodes attached to one CXL MHD (" << rack.cxl().attached_nodes() << "/"
            << rack.cxl().port_count() << " ports).\n"
            << "Consolidated images in the pool: " << FormatBytes(rack.PoolBytes())
            << " (stored once for the whole rack; rack-level dedup ratio "
            << Table::Num(rack.dedup().DedupRatio(), 3) << ")\n\n";

  // A burst hits the rack: the least-loaded dispatcher spreads it out.
  Schedule schedule;
  Rng rng(21);
  for (int i = 0; i < 64; ++i) {
    const char* fn = i % 3 == 0 ? "IR" : (i % 3 == 1 ? "JS" : "CR");
    schedule.push_back({SimTime::Zero() + SimDuration::Millis(i * 5), fn});
  }
  if (Status status = rack.Run(schedule); !status.ok()) {
    std::cerr << "run failed: " << status << "\n";
    return 1;
  }

  Table table({"Node", "invocations", "repurposed", "cold", "peak DRAM"});
  for (size_t i = 0; i < rack.node_count(); ++i) {
    const FunctionMetrics m = rack.node(i).metrics().Aggregate();
    table.AddRow({std::to_string(i), std::to_string(m.invocations),
                  std::to_string(m.repurposed_starts), std::to_string(m.cold_starts),
                  FormatBytes(rack.node(i).metrics().peak_memory_bytes())});
  }
  table.Print(std::cout);

  const FunctionMetrics agg = rack.AggregateMetrics();
  std::cout << "\nRack summary: " << agg.invocations << " invocations, p99 e2e "
            << Table::Num(agg.e2e_ms.P99()) << " ms\n"
            << "Rack memory right now: " << FormatBytes(rack.RackTotalBytes()) << " ("
            << FormatBytes(rack.PoolBytes()) << " shared pool + "
            << FormatBytes(rack.NodeDramBytes()) << " across all node DRAM)\n"
            << "A per-node-images design would need ~" << rack.node_count()
            << "x the image bytes instead (paper section 8.2).\n";
  return 0;
}
