// mm-template tour: drive the paper's kernel API (Fig 11/12) by hand.
//
// Demonstrates:
//   - building a template from a deduplicated snapshot (two functions whose
//     snapshots share a block, stored once in the pool),
//   - attaching one template into several processes (metadata-only copy),
//   - zero-fault CXL reads, copy-on-write isolation between instances,
//   - lazy RDMA pages (major faults on first touch),
//   - safe heap growth past a template-backed region (paper Fig 9b).
//
// Build & run:  ./build/examples/mm_template_tour
#include <iostream>

#include "src/common/table.h"
#include "src/mempool/cxl_pool.h"
#include "src/mempool/rdma_pool.h"
#include "src/mmtemplate/api.h"
#include "src/simkernel/fault_handler.h"

int main() {
  using namespace trenv;

  CxlPool cxl(8 * kGiB);
  RdmaPool rdma(8 * kGiB);
  BackendRegistry backends;
  backends.Register(&cxl);
  backends.Register(&rdma);
  FrameAllocator node_dram(8 * kGiB);
  FaultHandler kernel(&node_dram, &backends);
  MmtApi api(&backends);

  // --- Preprocessing (offline): a shared block, as in paper Fig 12. ---
  // Functions X and Y both embed the same 4-page runtime region ("Block 2").
  auto block2 = cxl.AllocatePages(4).value();
  (void)cxl.WriteContent(block2, 4, /*content=*/0x2000);
  // X's private heap lives on RDMA (cold tier), 8 pages.
  auto x_heap = rdma.AllocatePages(8).value();
  (void)rdma.WriteContent(x_heap, 8, /*content=*/0x3000);

  const Vaddr kRuntime = 0x7FFF4000000;
  const Vaddr kHeap = 0x555500000000;

  MmtId x = api.MmtCreate("func-x");
  (void)api.MmtAddMap(x, kRuntime, 4 * kPageSize, Protection::ReadOnly(), true, 1, 0, "runtime");
  (void)api.MmtAddMap(x, kHeap, 8 * kPageSize, Protection::ReadWrite(), true, -1, 0, "[heap]");
  (void)api.MmtSetupPt(x, kRuntime, 4 * kPageSize, block2, PoolKind::kCxl);
  (void)api.MmtSetupPt(x, kHeap, 8 * kPageSize, x_heap, PoolKind::kRdma);

  MmtId y = api.MmtCreate("func-y");
  (void)api.MmtAddMap(y, kRuntime, 4 * kPageSize, Protection::ReadOnly(), true, 1, 0, "runtime");
  (void)api.MmtSetupPt(y, kRuntime, 4 * kPageSize, block2, PoolKind::kCxl);

  std::cout << "Pool after preprocessing: " << FormatBytes(cxl.used_bytes())
            << " CXL (Block 2 stored ONCE for both functions), "
            << FormatBytes(rdma.used_bytes()) << " RDMA\n\n";

  // --- Online: attach X's template into two processes. ---
  MmStruct proc_a;
  MmStruct proc_b;
  auto attach_a = api.MmtAttach(x, &proc_a).value();
  auto attach_b = api.MmtAttach(x, &proc_b).value();
  std::cout << "mmt_attach copied " << FormatBytes(attach_a.metadata_bytes)
            << " of metadata in " << attach_a.latency.ToString() << " (not "
            << FormatBytes(12 * kPageSize) << " of pages)\n";
  (void)attach_b;

  // CXL read: direct load, no fault, no local memory.
  auto read = kernel.Access(proc_a, kRuntime, /*write=*/false).value();
  std::cout << "CXL read: kind=direct-remote, latency=" << read.latency.ToString()
            << ", content=0x" << std::hex << read.content << std::dec << "\n";

  // RDMA read: major fault fetches the 4 KiB page.
  auto lazy = kernel.Access(proc_a, kHeap, /*write=*/false).value();
  std::cout << "RDMA first touch: major fault, latency=" << lazy.latency.ToString() << "\n";

  // Copy-on-write isolation: A writes its heap; B (same template) still
  // reads the pristine image.
  (void)kernel.WritePage(proc_a, kHeap + kPageSize, 0xAAAA);
  const PageContent a_sees = kernel.ReadPage(proc_a, kHeap + kPageSize).value();
  const PageContent b_sees = kernel.ReadPage(proc_b, kHeap + kPageSize).value();
  std::cout << "After A's write: A reads 0x" << std::hex << a_sees << ", B reads 0x" << b_sees
            << std::dec << " (CoW isolation)\n";

  // Heap growth lands in local DRAM, never in adjacent pool ranges (Fig 9b).
  const Vaddr grown = proc_a.GrowVma(kHeap, 4 * kPageSize).value();
  (void)kernel.WritePage(proc_a, grown, 0xBBBB);
  const auto pte = proc_a.page_table().Lookup(AddrToVpn(grown)).value();
  std::cout << "Heap growth mapped to pool: " << PoolKindName(pte.flags.pool)
            << " (local, so no CXL corruption)\n\n";

  std::cout << "Local DRAM consumed across both processes: "
            << FormatBytes(node_dram.used_bytes())
            << " (only faulted/written pages; the images stay remote)\n";
  return 0;
}
