// Scenario: serving LLM agents in microVM sandboxes (paper section 6).
// Launches a mixed fleet of agents on E2B-style and TrEnv-style VM platforms
// under CPU overcommitment and compares startup, latency, and memory.
//
// Build & run:  ./build/examples/agent_sandbox
#include <iostream>

#include "src/agents/cost_model.h"
#include "src/common/table.h"
#include "src/vm/vm_platform.h"

int main() {
  using namespace trenv;

  std::cout << "Agent fleet: 30x Blackjack (interactive) + 25x Blog summary (browser-"
               "heavy),\nserved on 20 physical cores.\n\n";

  Table table({"System", "Blackjack p99 (s)", "Blog p99 (s)", "startup p99 (ms)", "peak mem",
               "browsers"});
  for (const VmSystemConfig& config :
       {E2bConfig(), E2bPlusConfig(), TrEnvVmConfig(), TrEnvSConfig()}) {
    AgentVmPlatform platform(config);
    for (const AgentProfile& agent : Table2Agents()) {
      if (Status status = platform.DeployAgent(agent); !status.ok()) {
        std::cerr << "deploy failed: " << status << "\n";
        return 1;
      }
    }
    for (int i = 0; i < 30; ++i) {
      (void)platform.SubmitLaunch(SimTime::Zero() + SimDuration::Millis(40 * i), "Blackjack");
    }
    for (int i = 0; i < 25; ++i) {
      (void)platform.SubmitLaunch(SimTime::Zero() + SimDuration::Millis(70 * i),
                                  "Blog summary");
    }
    platform.RunToCompletion();

    const AgentMetrics& blackjack = platform.metrics().at("Blackjack");
    const AgentMetrics& blog = platform.metrics().at("Blog summary");
    Histogram startup;
    startup.MergeFrom(blackjack.startup_ms);
    startup.MergeFrom(blog.startup_ms);
    table.AddRow({config.name, Table::Num(blackjack.e2e_s.P99(), 1),
                  Table::Num(blog.e2e_s.P99(), 1), Table::Num(startup.P99()),
                  FormatBytes(static_cast<uint64_t>(platform.memory_gauge().peak())),
                  config.browser_sharing ? "shared (10 tabs each)" : "one per agent"});
  }
  table.Print(std::cout);

  std::cout << "\nWhy it matters (the paper's section 2 cost analysis):\n";
  for (const std::string name : {"Blackjack", "Blog summary"}) {
    const AgentProfile* agent = FindAgent(name);
    std::cout << "  " << name << ": serverless infra costs "
              << Table::Pct(RelativeServerlessCost(*agent))
              << " of what the LLM tokens cost — memory density is money.\n";
  }
  return 0;
}
