// Scenario: a bursty serverless tenant (the paper's W1 pattern) served by
// three platforms side by side. Reproduces the headline effect in miniature:
// repurposable sandboxes + mm-templates collapse the cold-start tail.
//
// Build & run:  ./build/examples/serverless_bursty
#include <iostream>

#include "src/common/table.h"
#include "src/platform/testbed.h"
#include "src/workload/arrival.h"

int main() {
  using namespace trenv;

  // A bursty workload: every burst arrives after the 10-minute keep-alive
  // has expired, so caching alone cannot help.
  Rng rng(7);
  BurstyOptions options;
  options.duration = SimDuration::Minutes(45);
  options.burst_size = 12;
  const std::vector<std::string> functions = {"DH", "JS", "CR", "IR"};
  Schedule schedule = MakeBurstyWorkload(functions, options, rng);
  std::cout << "Workload: " << schedule.size() << " invocations of " << functions.size()
            << " functions in bursts spaced past the keep-alive TTL\n\n";

  Table table({"System", "P50 e2e (ms)", "P99 e2e (ms)", "mean startup (ms)", "peak mem",
               "repurposed", "cold"});
  for (SystemKind kind : {SystemKind::kCriu, SystemKind::kFaasnapPlus, SystemKind::kTrEnvCxl}) {
    Testbed bed(kind);
    if (Status status = bed.DeployTable4Functions(); !status.ok()) {
      std::cerr << "deploy failed: " << status << "\n";
      return 1;
    }
    if (Status status = bed.platform().Run(schedule); !status.ok()) {
      std::cerr << "run failed: " << status << "\n";
      return 1;
    }
    const FunctionMetrics agg = bed.platform().metrics().Aggregate();
    table.AddRow({SystemName(kind), Table::Num(agg.e2e_ms.Median()),
                  Table::Num(agg.e2e_ms.P99()), Table::Num(agg.startup_ms.Mean()),
                  FormatBytes(bed.platform().metrics().peak_memory_bytes()),
                  std::to_string(agg.repurposed_starts), std::to_string(agg.cold_starts)});
  }
  table.Print(std::cout);
  std::cout << "\nNote how T-CXL converts cold starts into repurposed starts after the\n"
               "first burst: any retired sandbox serves any pending function.\n";
  return 0;
}
