// Quickstart: the 60-second tour of the TrEnv library.
//
//   1. Build a T-CXL testbed (pools + sandbox machinery + platform).
//   2. Deploy the paper's Table-4 functions.
//   3. Invoke one function twice: a cold-ish start and a repurposed start.
//   4. Print what happened.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "src/common/log.h"
#include "src/common/table.h"
#include "src/platform/testbed.h"

int main() {
  using namespace trenv;
  SetLogLevel(LogLevel::kInfo);

  // A single node with a CXL memory pool, as in the paper's testbed.
  Testbed bed(SystemKind::kTrEnvCxl);
  if (Status status = bed.DeployTable4Functions(); !status.ok()) {
    std::cerr << "deploy failed: " << status << "\n";
    return 1;
  }
  std::cout << "Deployed " << bed.platform().registry().size()
            << " functions; snapshots deduplicated into the CXL pool:\n"
            << "  pool bytes in use: " << FormatBytes(bed.cxl().used_bytes()) << "\n"
            << "  dedup ratio (unique/ingested pages): "
            << Table::Num(bed.dedup()->DedupRatio(), 3) << "\n\n";

  // First invocation of JS: the sandbox pool is empty, so TrEnv falls back
  // to a cold creation (but with CLONE_INTO_CGROUP). The second invocation,
  // 11 minutes later (past keep-alive), repurposes the retired sandbox.
  Schedule schedule{{SimTime::Zero(), "JS"},
                    {SimTime::Zero() + SimDuration::Minutes(11), "JS"}};
  if (Status status = bed.platform().Run(schedule); !status.ok()) {
    std::cerr << "run failed: " << status << "\n";
    return 1;
  }

  const auto& metrics = bed.platform().metrics().per_function().at("JS");
  std::cout << "JS invocations: " << metrics.invocations << "\n"
            << "  cold starts:       " << metrics.cold_starts << "\n"
            << "  repurposed starts: " << metrics.repurposed_starts << "\n"
            << "  startup latency:   first " << Table::Num(metrics.startup_ms.Max())
            << " ms, then " << Table::Num(metrics.startup_ms.Min()) << " ms\n"
            << "  e2e latency:       " << metrics.e2e_ms.Summary() << " (ms)\n\n";

  std::cout << "Node memory in use after the run: "
            << FormatBytes(bed.platform().frames().used_bytes())
            << " (instances keep only CoW'd pages locally; the image stays on CXL)\n";
  return 0;
}
