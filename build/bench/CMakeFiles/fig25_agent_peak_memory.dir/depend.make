# Empty dependencies file for fig25_agent_peak_memory.
# This may be replaced when dependencies are built.
