file(REMOVE_RECURSE
  "CMakeFiles/fig25_agent_peak_memory.dir/fig25_agent_peak_memory.cc.o"
  "CMakeFiles/fig25_agent_peak_memory.dir/fig25_agent_peak_memory.cc.o.d"
  "fig25_agent_peak_memory"
  "fig25_agent_peak_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_agent_peak_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
