# Empty compiler generated dependencies file for fig20_real_world.
# This may be replaced when dependencies are built.
