file(REMOVE_RECURSE
  "CMakeFiles/fig20_real_world.dir/fig20_real_world.cc.o"
  "CMakeFiles/fig20_real_world.dir/fig20_real_world.cc.o.d"
  "fig20_real_world"
  "fig20_real_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_real_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
