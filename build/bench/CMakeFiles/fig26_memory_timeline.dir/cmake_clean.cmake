file(REMOVE_RECURSE
  "CMakeFiles/fig26_memory_timeline.dir/fig26_memory_timeline.cc.o"
  "CMakeFiles/fig26_memory_timeline.dir/fig26_memory_timeline.cc.o.d"
  "fig26_memory_timeline"
  "fig26_memory_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_memory_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
