# Empty dependencies file for fig26_memory_timeline.
# This may be replaced when dependencies are built.
