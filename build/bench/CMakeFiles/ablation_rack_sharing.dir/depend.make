# Empty dependencies file for ablation_rack_sharing.
# This may be replaced when dependencies are built.
