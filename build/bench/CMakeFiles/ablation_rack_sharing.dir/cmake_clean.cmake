file(REMOVE_RECURSE
  "CMakeFiles/ablation_rack_sharing.dir/ablation_rack_sharing.cc.o"
  "CMakeFiles/ablation_rack_sharing.dir/ablation_rack_sharing.cc.o.d"
  "ablation_rack_sharing"
  "ablation_rack_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rack_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
