file(REMOVE_RECURSE
  "CMakeFiles/fig19_no_concurrency.dir/fig19_no_concurrency.cc.o"
  "CMakeFiles/fig19_no_concurrency.dir/fig19_no_concurrency.cc.o.d"
  "fig19_no_concurrency"
  "fig19_no_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_no_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
