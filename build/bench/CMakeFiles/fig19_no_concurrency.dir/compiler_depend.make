# Empty compiler generated dependencies file for fig19_no_concurrency.
# This may be replaced when dependencies are built.
