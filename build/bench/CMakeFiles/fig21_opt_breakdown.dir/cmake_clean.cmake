file(REMOVE_RECURSE
  "CMakeFiles/fig21_opt_breakdown.dir/fig21_opt_breakdown.cc.o"
  "CMakeFiles/fig21_opt_breakdown.dir/fig21_opt_breakdown.cc.o.d"
  "fig21_opt_breakdown"
  "fig21_opt_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_opt_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
