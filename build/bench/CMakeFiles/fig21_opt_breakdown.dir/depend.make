# Empty dependencies file for fig21_opt_breakdown.
# This may be replaced when dependencies are built.
