# Empty dependencies file for micro_ops_bench.
# This may be replaced when dependencies are built.
