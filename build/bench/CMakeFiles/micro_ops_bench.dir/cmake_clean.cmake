file(REMOVE_RECURSE
  "CMakeFiles/micro_ops_bench.dir/micro_ops_bench.cc.o"
  "CMakeFiles/micro_ops_bench.dir/micro_ops_bench.cc.o.d"
  "micro_ops_bench"
  "micro_ops_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ops_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
