# Empty compiler generated dependencies file for ablation_prewarm.
# This may be replaced when dependencies are built.
