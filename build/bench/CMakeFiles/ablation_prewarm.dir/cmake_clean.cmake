file(REMOVE_RECURSE
  "CMakeFiles/ablation_prewarm.dir/ablation_prewarm.cc.o"
  "CMakeFiles/ablation_prewarm.dir/ablation_prewarm.cc.o.d"
  "ablation_prewarm"
  "ablation_prewarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prewarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
