file(REMOVE_RECURSE
  "CMakeFiles/fig23_vm_startup.dir/fig23_vm_startup.cc.o"
  "CMakeFiles/fig23_vm_startup.dir/fig23_vm_startup.cc.o.d"
  "fig23_vm_startup"
  "fig23_vm_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_vm_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
