# Empty compiler generated dependencies file for fig23_vm_startup.
# This may be replaced when dependencies are built.
