file(REMOVE_RECURSE
  "CMakeFiles/ablation_dram_hot.dir/ablation_dram_hot.cc.o"
  "CMakeFiles/ablation_dram_hot.dir/ablation_dram_hot.cc.o.d"
  "ablation_dram_hot"
  "ablation_dram_hot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dram_hot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
