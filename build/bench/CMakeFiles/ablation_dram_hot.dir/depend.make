# Empty dependencies file for ablation_dram_hot.
# This may be replaced when dependencies are built.
