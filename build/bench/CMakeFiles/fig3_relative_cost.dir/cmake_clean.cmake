file(REMOVE_RECURSE
  "CMakeFiles/fig3_relative_cost.dir/fig3_relative_cost.cc.o"
  "CMakeFiles/fig3_relative_cost.dir/fig3_relative_cost.cc.o.d"
  "fig3_relative_cost"
  "fig3_relative_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_relative_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
