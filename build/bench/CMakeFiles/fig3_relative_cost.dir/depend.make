# Empty dependencies file for fig3_relative_cost.
# This may be replaced when dependencies are built.
