file(REMOVE_RECURSE
  "CMakeFiles/table3_token_usage.dir/table3_token_usage.cc.o"
  "CMakeFiles/table3_token_usage.dir/table3_token_usage.cc.o.d"
  "table3_token_usage"
  "table3_token_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_token_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
