# Empty compiler generated dependencies file for table3_token_usage.
# This may be replaced when dependencies are built.
