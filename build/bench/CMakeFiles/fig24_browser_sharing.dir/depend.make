# Empty dependencies file for fig24_browser_sharing.
# This may be replaced when dependencies are built.
