file(REMOVE_RECURSE
  "CMakeFiles/fig24_browser_sharing.dir/fig24_browser_sharing.cc.o"
  "CMakeFiles/fig24_browser_sharing.dir/fig24_browser_sharing.cc.o.d"
  "fig24_browser_sharing"
  "fig24_browser_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_browser_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
