# Empty compiler generated dependencies file for fig22_cxl_vs_rdma.
# This may be replaced when dependencies are built.
