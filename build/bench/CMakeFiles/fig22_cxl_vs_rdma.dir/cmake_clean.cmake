file(REMOVE_RECURSE
  "CMakeFiles/fig22_cxl_vs_rdma.dir/fig22_cxl_vs_rdma.cc.o"
  "CMakeFiles/fig22_cxl_vs_rdma.dir/fig22_cxl_vs_rdma.cc.o.d"
  "fig22_cxl_vs_rdma"
  "fig22_cxl_vs_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_cxl_vs_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
