# Empty compiler generated dependencies file for table1_sandbox_components.
# This may be replaced when dependencies are built.
