file(REMOVE_RECURSE
  "CMakeFiles/table1_sandbox_components.dir/table1_sandbox_components.cc.o"
  "CMakeFiles/table1_sandbox_components.dir/table1_sandbox_components.cc.o.d"
  "table1_sandbox_components"
  "table1_sandbox_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sandbox_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
