file(REMOVE_RECURSE
  "CMakeFiles/fig18_memory_usage.dir/fig18_memory_usage.cc.o"
  "CMakeFiles/fig18_memory_usage.dir/fig18_memory_usage.cc.o.d"
  "fig18_memory_usage"
  "fig18_memory_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_memory_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
