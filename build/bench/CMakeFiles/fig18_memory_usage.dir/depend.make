# Empty dependencies file for fig18_memory_usage.
# This may be replaced when dependencies are built.
