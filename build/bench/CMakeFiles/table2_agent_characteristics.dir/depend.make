# Empty dependencies file for table2_agent_characteristics.
# This may be replaced when dependencies are built.
