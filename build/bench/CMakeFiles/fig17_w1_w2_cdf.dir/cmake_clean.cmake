file(REMOVE_RECURSE
  "CMakeFiles/fig17_w1_w2_cdf.dir/fig17_w1_w2_cdf.cc.o"
  "CMakeFiles/fig17_w1_w2_cdf.dir/fig17_w1_w2_cdf.cc.o.d"
  "fig17_w1_w2_cdf"
  "fig17_w1_w2_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_w1_w2_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
