# Empty compiler generated dependencies file for fig17_w1_w2_cdf.
# This may be replaced when dependencies are built.
