# Empty compiler generated dependencies file for trenv_sim.
# This may be replaced when dependencies are built.
