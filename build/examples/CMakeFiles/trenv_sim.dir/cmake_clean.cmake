file(REMOVE_RECURSE
  "CMakeFiles/trenv_sim.dir/trenv_sim.cpp.o"
  "CMakeFiles/trenv_sim.dir/trenv_sim.cpp.o.d"
  "trenv_sim"
  "trenv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trenv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
