file(REMOVE_RECURSE
  "CMakeFiles/serverless_bursty.dir/serverless_bursty.cpp.o"
  "CMakeFiles/serverless_bursty.dir/serverless_bursty.cpp.o.d"
  "serverless_bursty"
  "serverless_bursty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_bursty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
