# Empty compiler generated dependencies file for serverless_bursty.
# This may be replaced when dependencies are built.
