# Empty dependencies file for mm_template_tour.
# This may be replaced when dependencies are built.
