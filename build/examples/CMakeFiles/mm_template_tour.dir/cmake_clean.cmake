file(REMOVE_RECURSE
  "CMakeFiles/mm_template_tour.dir/mm_template_tour.cpp.o"
  "CMakeFiles/mm_template_tour.dir/mm_template_tour.cpp.o.d"
  "mm_template_tour"
  "mm_template_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_template_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
