file(REMOVE_RECURSE
  "CMakeFiles/agent_sandbox.dir/agent_sandbox.cpp.o"
  "CMakeFiles/agent_sandbox.dir/agent_sandbox.cpp.o.d"
  "agent_sandbox"
  "agent_sandbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_sandbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
