# Empty dependencies file for agent_sandbox.
# This may be replaced when dependencies are built.
