# Empty compiler generated dependencies file for rack_cluster.
# This may be replaced when dependencies are built.
