file(REMOVE_RECURSE
  "CMakeFiles/rack_cluster.dir/rack_cluster.cpp.o"
  "CMakeFiles/rack_cluster.dir/rack_cluster.cpp.o.d"
  "rack_cluster"
  "rack_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rack_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
