# Empty compiler generated dependencies file for trenv.
# This may be replaced when dependencies are built.
