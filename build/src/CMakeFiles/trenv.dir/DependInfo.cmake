
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agents/agent_executor.cc" "src/CMakeFiles/trenv.dir/agents/agent_executor.cc.o" "gcc" "src/CMakeFiles/trenv.dir/agents/agent_executor.cc.o.d"
  "/root/repo/src/agents/agent_profile.cc" "src/CMakeFiles/trenv.dir/agents/agent_profile.cc.o" "gcc" "src/CMakeFiles/trenv.dir/agents/agent_profile.cc.o.d"
  "/root/repo/src/agents/browser.cc" "src/CMakeFiles/trenv.dir/agents/browser.cc.o" "gcc" "src/CMakeFiles/trenv.dir/agents/browser.cc.o.d"
  "/root/repo/src/agents/cost_model.cc" "src/CMakeFiles/trenv.dir/agents/cost_model.cc.o" "gcc" "src/CMakeFiles/trenv.dir/agents/cost_model.cc.o.d"
  "/root/repo/src/agents/llm_trace.cc" "src/CMakeFiles/trenv.dir/agents/llm_trace.cc.o" "gcc" "src/CMakeFiles/trenv.dir/agents/llm_trace.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/trenv.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/trenv.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/trenv.dir/common/log.cc.o" "gcc" "src/CMakeFiles/trenv.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/trenv.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/trenv.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/trenv.dir/common/status.cc.o" "gcc" "src/CMakeFiles/trenv.dir/common/status.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/trenv.dir/common/table.cc.o" "gcc" "src/CMakeFiles/trenv.dir/common/table.cc.o.d"
  "/root/repo/src/common/units.cc" "src/CMakeFiles/trenv.dir/common/units.cc.o" "gcc" "src/CMakeFiles/trenv.dir/common/units.cc.o.d"
  "/root/repo/src/criu/checkpointer.cc" "src/CMakeFiles/trenv.dir/criu/checkpointer.cc.o" "gcc" "src/CMakeFiles/trenv.dir/criu/checkpointer.cc.o.d"
  "/root/repo/src/criu/deduplicator.cc" "src/CMakeFiles/trenv.dir/criu/deduplicator.cc.o" "gcc" "src/CMakeFiles/trenv.dir/criu/deduplicator.cc.o.d"
  "/root/repo/src/criu/lazy_engines.cc" "src/CMakeFiles/trenv.dir/criu/lazy_engines.cc.o" "gcc" "src/CMakeFiles/trenv.dir/criu/lazy_engines.cc.o.d"
  "/root/repo/src/criu/process_image.cc" "src/CMakeFiles/trenv.dir/criu/process_image.cc.o" "gcc" "src/CMakeFiles/trenv.dir/criu/process_image.cc.o.d"
  "/root/repo/src/criu/restore_engine.cc" "src/CMakeFiles/trenv.dir/criu/restore_engine.cc.o" "gcc" "src/CMakeFiles/trenv.dir/criu/restore_engine.cc.o.d"
  "/root/repo/src/criu/trenv_engine.cc" "src/CMakeFiles/trenv.dir/criu/trenv_engine.cc.o" "gcc" "src/CMakeFiles/trenv.dir/criu/trenv_engine.cc.o.d"
  "/root/repo/src/mempool/backend.cc" "src/CMakeFiles/trenv.dir/mempool/backend.cc.o" "gcc" "src/CMakeFiles/trenv.dir/mempool/backend.cc.o.d"
  "/root/repo/src/mempool/block_allocator.cc" "src/CMakeFiles/trenv.dir/mempool/block_allocator.cc.o" "gcc" "src/CMakeFiles/trenv.dir/mempool/block_allocator.cc.o.d"
  "/root/repo/src/mempool/cxl_pool.cc" "src/CMakeFiles/trenv.dir/mempool/cxl_pool.cc.o" "gcc" "src/CMakeFiles/trenv.dir/mempool/cxl_pool.cc.o.d"
  "/root/repo/src/mempool/dram_pool.cc" "src/CMakeFiles/trenv.dir/mempool/dram_pool.cc.o" "gcc" "src/CMakeFiles/trenv.dir/mempool/dram_pool.cc.o.d"
  "/root/repo/src/mempool/nas_pool.cc" "src/CMakeFiles/trenv.dir/mempool/nas_pool.cc.o" "gcc" "src/CMakeFiles/trenv.dir/mempool/nas_pool.cc.o.d"
  "/root/repo/src/mempool/promotion.cc" "src/CMakeFiles/trenv.dir/mempool/promotion.cc.o" "gcc" "src/CMakeFiles/trenv.dir/mempool/promotion.cc.o.d"
  "/root/repo/src/mempool/rdma_pool.cc" "src/CMakeFiles/trenv.dir/mempool/rdma_pool.cc.o" "gcc" "src/CMakeFiles/trenv.dir/mempool/rdma_pool.cc.o.d"
  "/root/repo/src/mempool/tiered_pool.cc" "src/CMakeFiles/trenv.dir/mempool/tiered_pool.cc.o" "gcc" "src/CMakeFiles/trenv.dir/mempool/tiered_pool.cc.o.d"
  "/root/repo/src/mmtemplate/api.cc" "src/CMakeFiles/trenv.dir/mmtemplate/api.cc.o" "gcc" "src/CMakeFiles/trenv.dir/mmtemplate/api.cc.o.d"
  "/root/repo/src/mmtemplate/mm_template.cc" "src/CMakeFiles/trenv.dir/mmtemplate/mm_template.cc.o" "gcc" "src/CMakeFiles/trenv.dir/mmtemplate/mm_template.cc.o.d"
  "/root/repo/src/mmtemplate/registry.cc" "src/CMakeFiles/trenv.dir/mmtemplate/registry.cc.o" "gcc" "src/CMakeFiles/trenv.dir/mmtemplate/registry.cc.o.d"
  "/root/repo/src/platform/cluster.cc" "src/CMakeFiles/trenv.dir/platform/cluster.cc.o" "gcc" "src/CMakeFiles/trenv.dir/platform/cluster.cc.o.d"
  "/root/repo/src/platform/function_registry.cc" "src/CMakeFiles/trenv.dir/platform/function_registry.cc.o" "gcc" "src/CMakeFiles/trenv.dir/platform/function_registry.cc.o.d"
  "/root/repo/src/platform/keep_alive_pool.cc" "src/CMakeFiles/trenv.dir/platform/keep_alive_pool.cc.o" "gcc" "src/CMakeFiles/trenv.dir/platform/keep_alive_pool.cc.o.d"
  "/root/repo/src/platform/metrics.cc" "src/CMakeFiles/trenv.dir/platform/metrics.cc.o" "gcc" "src/CMakeFiles/trenv.dir/platform/metrics.cc.o.d"
  "/root/repo/src/platform/platform.cc" "src/CMakeFiles/trenv.dir/platform/platform.cc.o" "gcc" "src/CMakeFiles/trenv.dir/platform/platform.cc.o.d"
  "/root/repo/src/platform/prewarm.cc" "src/CMakeFiles/trenv.dir/platform/prewarm.cc.o" "gcc" "src/CMakeFiles/trenv.dir/platform/prewarm.cc.o.d"
  "/root/repo/src/platform/testbed.cc" "src/CMakeFiles/trenv.dir/platform/testbed.cc.o" "gcc" "src/CMakeFiles/trenv.dir/platform/testbed.cc.o.d"
  "/root/repo/src/runtime/execution_model.cc" "src/CMakeFiles/trenv.dir/runtime/execution_model.cc.o" "gcc" "src/CMakeFiles/trenv.dir/runtime/execution_model.cc.o.d"
  "/root/repo/src/runtime/function_profile.cc" "src/CMakeFiles/trenv.dir/runtime/function_profile.cc.o" "gcc" "src/CMakeFiles/trenv.dir/runtime/function_profile.cc.o.d"
  "/root/repo/src/runtime/process.cc" "src/CMakeFiles/trenv.dir/runtime/process.cc.o" "gcc" "src/CMakeFiles/trenv.dir/runtime/process.cc.o.d"
  "/root/repo/src/sandbox/cgroup.cc" "src/CMakeFiles/trenv.dir/sandbox/cgroup.cc.o" "gcc" "src/CMakeFiles/trenv.dir/sandbox/cgroup.cc.o.d"
  "/root/repo/src/sandbox/mount_namespace.cc" "src/CMakeFiles/trenv.dir/sandbox/mount_namespace.cc.o" "gcc" "src/CMakeFiles/trenv.dir/sandbox/mount_namespace.cc.o.d"
  "/root/repo/src/sandbox/net_namespace.cc" "src/CMakeFiles/trenv.dir/sandbox/net_namespace.cc.o" "gcc" "src/CMakeFiles/trenv.dir/sandbox/net_namespace.cc.o.d"
  "/root/repo/src/sandbox/sandbox.cc" "src/CMakeFiles/trenv.dir/sandbox/sandbox.cc.o" "gcc" "src/CMakeFiles/trenv.dir/sandbox/sandbox.cc.o.d"
  "/root/repo/src/sandbox/sandbox_pool.cc" "src/CMakeFiles/trenv.dir/sandbox/sandbox_pool.cc.o" "gcc" "src/CMakeFiles/trenv.dir/sandbox/sandbox_pool.cc.o.d"
  "/root/repo/src/sandbox/union_fs.cc" "src/CMakeFiles/trenv.dir/sandbox/union_fs.cc.o" "gcc" "src/CMakeFiles/trenv.dir/sandbox/union_fs.cc.o.d"
  "/root/repo/src/sim/cpu.cc" "src/CMakeFiles/trenv.dir/sim/cpu.cc.o" "gcc" "src/CMakeFiles/trenv.dir/sim/cpu.cc.o.d"
  "/root/repo/src/sim/event_scheduler.cc" "src/CMakeFiles/trenv.dir/sim/event_scheduler.cc.o" "gcc" "src/CMakeFiles/trenv.dir/sim/event_scheduler.cc.o.d"
  "/root/repo/src/sim/semaphore.cc" "src/CMakeFiles/trenv.dir/sim/semaphore.cc.o" "gcc" "src/CMakeFiles/trenv.dir/sim/semaphore.cc.o.d"
  "/root/repo/src/simkernel/fault_handler.cc" "src/CMakeFiles/trenv.dir/simkernel/fault_handler.cc.o" "gcc" "src/CMakeFiles/trenv.dir/simkernel/fault_handler.cc.o.d"
  "/root/repo/src/simkernel/frame_allocator.cc" "src/CMakeFiles/trenv.dir/simkernel/frame_allocator.cc.o" "gcc" "src/CMakeFiles/trenv.dir/simkernel/frame_allocator.cc.o.d"
  "/root/repo/src/simkernel/mm_struct.cc" "src/CMakeFiles/trenv.dir/simkernel/mm_struct.cc.o" "gcc" "src/CMakeFiles/trenv.dir/simkernel/mm_struct.cc.o.d"
  "/root/repo/src/simkernel/page_cache.cc" "src/CMakeFiles/trenv.dir/simkernel/page_cache.cc.o" "gcc" "src/CMakeFiles/trenv.dir/simkernel/page_cache.cc.o.d"
  "/root/repo/src/simkernel/page_table.cc" "src/CMakeFiles/trenv.dir/simkernel/page_table.cc.o" "gcc" "src/CMakeFiles/trenv.dir/simkernel/page_table.cc.o.d"
  "/root/repo/src/simkernel/vma.cc" "src/CMakeFiles/trenv.dir/simkernel/vma.cc.o" "gcc" "src/CMakeFiles/trenv.dir/simkernel/vma.cc.o.d"
  "/root/repo/src/vm/guest_memory.cc" "src/CMakeFiles/trenv.dir/vm/guest_memory.cc.o" "gcc" "src/CMakeFiles/trenv.dir/vm/guest_memory.cc.o.d"
  "/root/repo/src/vm/micro_vm.cc" "src/CMakeFiles/trenv.dir/vm/micro_vm.cc.o" "gcc" "src/CMakeFiles/trenv.dir/vm/micro_vm.cc.o.d"
  "/root/repo/src/vm/virtio_device.cc" "src/CMakeFiles/trenv.dir/vm/virtio_device.cc.o" "gcc" "src/CMakeFiles/trenv.dir/vm/virtio_device.cc.o.d"
  "/root/repo/src/vm/vm_configs.cc" "src/CMakeFiles/trenv.dir/vm/vm_configs.cc.o" "gcc" "src/CMakeFiles/trenv.dir/vm/vm_configs.cc.o.d"
  "/root/repo/src/vm/vm_platform.cc" "src/CMakeFiles/trenv.dir/vm/vm_platform.cc.o" "gcc" "src/CMakeFiles/trenv.dir/vm/vm_platform.cc.o.d"
  "/root/repo/src/workload/arrival.cc" "src/CMakeFiles/trenv.dir/workload/arrival.cc.o" "gcc" "src/CMakeFiles/trenv.dir/workload/arrival.cc.o.d"
  "/root/repo/src/workload/trace_csv.cc" "src/CMakeFiles/trenv.dir/workload/trace_csv.cc.o" "gcc" "src/CMakeFiles/trenv.dir/workload/trace_csv.cc.o.d"
  "/root/repo/src/workload/traces.cc" "src/CMakeFiles/trenv.dir/workload/traces.cc.o" "gcc" "src/CMakeFiles/trenv.dir/workload/traces.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
