file(REMOVE_RECURSE
  "libtrenv.a"
)
