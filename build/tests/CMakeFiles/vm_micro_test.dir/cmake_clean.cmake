file(REMOVE_RECURSE
  "CMakeFiles/vm_micro_test.dir/vm_micro_test.cc.o"
  "CMakeFiles/vm_micro_test.dir/vm_micro_test.cc.o.d"
  "vm_micro_test"
  "vm_micro_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_micro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
