# Empty dependencies file for vm_micro_test.
# This may be replaced when dependencies are built.
