file(REMOVE_RECURSE
  "CMakeFiles/prewarm_test.dir/prewarm_test.cc.o"
  "CMakeFiles/prewarm_test.dir/prewarm_test.cc.o.d"
  "prewarm_test"
  "prewarm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prewarm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
