file(REMOVE_RECURSE
  "CMakeFiles/vm_platform_test.dir/vm_platform_test.cc.o"
  "CMakeFiles/vm_platform_test.dir/vm_platform_test.cc.o.d"
  "vm_platform_test"
  "vm_platform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
