# Empty compiler generated dependencies file for vm_platform_test.
# This may be replaced when dependencies are built.
