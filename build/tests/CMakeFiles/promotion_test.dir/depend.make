# Empty dependencies file for promotion_test.
# This may be replaced when dependencies are built.
