file(REMOVE_RECURSE
  "CMakeFiles/promotion_test.dir/promotion_test.cc.o"
  "CMakeFiles/promotion_test.dir/promotion_test.cc.o.d"
  "promotion_test"
  "promotion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promotion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
