file(REMOVE_RECURSE
  "CMakeFiles/fault_handler_test.dir/fault_handler_test.cc.o"
  "CMakeFiles/fault_handler_test.dir/fault_handler_test.cc.o.d"
  "fault_handler_test"
  "fault_handler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_handler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
