file(REMOVE_RECURSE
  "CMakeFiles/trace_csv_test.dir/trace_csv_test.cc.o"
  "CMakeFiles/trace_csv_test.dir/trace_csv_test.cc.o.d"
  "trace_csv_test"
  "trace_csv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
