file(REMOVE_RECURSE
  "CMakeFiles/criu_test.dir/criu_test.cc.o"
  "CMakeFiles/criu_test.dir/criu_test.cc.o.d"
  "criu_test"
  "criu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/criu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
