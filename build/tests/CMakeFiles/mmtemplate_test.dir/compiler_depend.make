# Empty compiler generated dependencies file for mmtemplate_test.
# This may be replaced when dependencies are built.
