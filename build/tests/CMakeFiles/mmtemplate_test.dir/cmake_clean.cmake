file(REMOVE_RECURSE
  "CMakeFiles/mmtemplate_test.dir/mmtemplate_test.cc.o"
  "CMakeFiles/mmtemplate_test.dir/mmtemplate_test.cc.o.d"
  "mmtemplate_test"
  "mmtemplate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmtemplate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
