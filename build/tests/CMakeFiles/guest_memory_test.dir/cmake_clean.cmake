file(REMOVE_RECURSE
  "CMakeFiles/guest_memory_test.dir/guest_memory_test.cc.o"
  "CMakeFiles/guest_memory_test.dir/guest_memory_test.cc.o.d"
  "guest_memory_test"
  "guest_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
